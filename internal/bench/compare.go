package bench

// The benchmark regression gate behind `phloembench -exp compare` and
// `phloembench -benchdiff`: diff a fresh run (or any report file) against a
// committed BENCH_*.json with per-metric thresholds. Only counts and
// simulator cycles are compared — never wall time, which depends on the
// host. Simulator cycle counts are deterministic for a given scale, so the
// thresholds exist to absorb intentional small shifts (a pass reordering, a
// calibration tweak), not host noise; anything beyond them is a regression
// CI should fail on.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// DiffOptions sets the regression thresholds.
type DiffOptions struct {
	// CyclesTolPct is the relative tolerance (percent) on cycle metrics:
	// new > old*(1+tol/100) is a regression. Cycle improvements are reported
	// but never fatal. Applied to stall counters the same way.
	CyclesTolPct float64
	// CountTol is the absolute drift allowed on count metrics (enumerated,
	// searched, stages, pruned...), in either direction: counts are exact
	// search results, so the default 0 means any change is flagged.
	CountTol int
}

// DefaultDiffOptions matches the CI gate: generous 10% on cycles, exact on
// counts.
func DefaultDiffOptions() DiffOptions {
	return DiffOptions{CyclesTolPct: 10}
}

// DiffFinding is one metric's old-vs-new comparison outcome.
type DiffFinding struct {
	Bench  string  `json:"bench"` // "" for report-level metrics
	Metric string  `json:"metric"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// Regression marks a change beyond threshold in the bad direction (or a
	// structural mismatch); Changed marks any difference at all.
	Regression bool   `json:"regression"`
	Changed    bool   `json:"changed"`
	Note       string `json:"note,omitempty"`
}

// differ accumulates findings over one report pair.
type differ struct {
	opt      DiffOptions
	findings []DiffFinding
}

// count compares an exact count metric (two-sided CountTol drift).
func (d *differ) count(bench, metric string, old, new int) {
	f := DiffFinding{Bench: bench, Metric: metric, Old: float64(old), New: float64(new)}
	if old != new {
		f.Changed = true
		if math.Abs(float64(new-old)) > float64(d.opt.CountTol) {
			f.Regression = true
			f.Note = fmt.Sprintf("count drifted by %+d (tolerance %d)", new-old, d.opt.CountTol)
		}
	}
	d.findings = append(d.findings, f)
}

// cycles compares a lower-is-better cycle/stall metric (one-sided pct
// tolerance; a zero old value falls back to the CountTol drift check).
func (d *differ) cycles(bench, metric string, old, new uint64) {
	f := DiffFinding{Bench: bench, Metric: metric, Old: float64(old), New: float64(new)}
	if old != new {
		f.Changed = true
	}
	switch {
	case old == 0:
		if new > uint64(d.opt.CountTol) {
			f.Regression = true
			f.Note = fmt.Sprintf("was 0, now %d", new)
		}
	case new > old:
		pct := 100 * (float64(new) - float64(old)) / float64(old)
		f.Note = fmt.Sprintf("%+.2f%%", pct)
		if pct > d.opt.CyclesTolPct {
			f.Regression = true
			f.Note = fmt.Sprintf("+%.2f%% (tolerance %.2f%%)", pct, d.opt.CyclesTolPct)
		}
	case new < old:
		f.Note = fmt.Sprintf("%.2f%% improvement", 100*(float64(old)-float64(new))/float64(old))
	}
	d.findings = append(d.findings, f)
}

// flag compares a must-stay-true boolean (true -> false is a regression).
func (d *differ) flag(bench, metric string, old, new bool) {
	f := DiffFinding{Bench: bench, Metric: metric, Old: b2f(old), New: b2f(new)}
	if old != new {
		f.Changed = true
		if old && !new {
			f.Regression = true
			f.Note = "was true, now false"
		}
	}
	d.findings = append(d.findings, f)
}

// structural records a report-shape mismatch (always a regression).
func (d *differ) structural(bench, note string) {
	d.findings = append(d.findings, DiffFinding{Bench: bench, Metric: "structure",
		Regression: true, Changed: true, Note: note})
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// DiffSearchReports compares two search-engine reports metric by metric.
// Wall-time columns (the *_ms fields, speedups, candidates/sec) and the
// baseline-leg-dependent rank-correlation columns are never compared.
func DiffSearchReports(old, new *SearchReport, opt DiffOptions) []DiffFinding {
	d := &differ{opt: opt}
	if old.Scale != new.Scale {
		d.structural("", fmt.Sprintf("scale mismatch: old %q vs new %q (not comparable)", old.Scale, new.Scale))
		return d.findings
	}
	d.count("", "topk", old.TopK, new.TopK)
	byName := map[string]*SearchRow{}
	for i := range new.Benchmarks {
		byName[new.Benchmarks[i].Name] = &new.Benchmarks[i]
	}
	for i := range old.Benchmarks {
		o := &old.Benchmarks[i]
		n, ok := byName[o.Name]
		if !ok {
			d.structural(o.Name, "benchmark missing from new report")
			continue
		}
		delete(byName, o.Name)
		d.count(o.Name, "enumerated", o.Enumerated, n.Enumerated)
		d.count(o.Name, "searched", o.Searched, n.Searched)
		d.count(o.Name, "deduped", o.Deduped, n.Deduped)
		d.count(o.Name, "skipped", o.Skipped, n.Skipped)
		d.count(o.Name, "best_stages", o.BestStages, n.BestStages)
		d.cycles(o.Name, "best_train_cycles", o.BestCycles, n.BestCycles)
		d.count(o.Name, "topk_pruned", o.TopKPruned, n.TopKPruned)
		d.count(o.Name, "topk_measured", o.TopKMeasured, n.TopKMeasured)
		d.cycles(o.Name, "topk_train_cycles", o.TopKCycles, n.TopKCycles)
		d.flag(o.Name, "topk_agrees", o.TopKAgrees, n.TopKAgrees)
	}
	for name := range byName {
		d.structural(name, "benchmark only in new report")
	}
	return d.findings
}

// DiffCommOptReports compares two commopt reports leg by leg.
func DiffCommOptReports(old, new *CommOptReport, opt DiffOptions) []DiffFinding {
	d := &differ{opt: opt}
	if old.Scale != new.Scale {
		d.structural("", fmt.Sprintf("scale mismatch: old %q vs new %q (not comparable)", old.Scale, new.Scale))
		return d.findings
	}
	d.count("", "default_queue_depth", old.QueueDepth, new.QueueDepth)
	d.count("", "improved_families", old.ImprovedFamilies, new.ImprovedFamilies)
	byName := map[string]*CommOptRow{}
	for i := range new.Benchmarks {
		byName[new.Benchmarks[i].Name] = &new.Benchmarks[i]
	}
	for i := range old.Benchmarks {
		o := &old.Benchmarks[i]
		n, ok := byName[o.Name]
		if !ok {
			d.structural(o.Name, "benchmark missing from new report")
			continue
		}
		delete(byName, o.Name)
		d.count(o.Name, "queues", o.Queues, n.Queues)
		legs := map[string]*CommOptLeg{}
		for j := range n.Legs {
			legs[n.Legs[j].Name] = &n.Legs[j]
		}
		for j := range o.Legs {
			ol := &o.Legs[j]
			nl, ok := legs[ol.Name]
			if !ok {
				d.structural(o.Name, fmt.Sprintf("leg %q missing from new report", ol.Name))
				continue
			}
			key := ol.Name + "." // e.g. "both.cycles"
			d.cycles(o.Name, key+"cycles", ol.Cycles, nl.Cycles)
			d.cycles(o.Name, key+"queue_full_stalls", ol.FullStalls, nl.FullStalls)
			d.count(o.Name, key+"assigned", ol.Assigned, nl.Assigned)
			d.count(o.Name, key+"fanouts", ol.FanOuts, nl.FanOuts)
		}
	}
	for name := range byName {
		d.structural(name, "benchmark only in new report")
	}
	return d.findings
}

// Regressions filters findings down to threshold violations.
func Regressions(findings []DiffFinding) []DiffFinding {
	var out []DiffFinding
	for _, f := range findings {
		if f.Regression {
			out = append(out, f)
		}
	}
	return out
}

// RenderDiff prints the comparison: every changed metric, then a verdict
// line. Unchanged metrics are summarized, not listed. Output order follows
// the old report, so it is deterministic.
func RenderDiff(w io.Writer, title string, findings []DiffFinding) {
	changed, regressed := 0, 0
	fmt.Fprintf(w, "%s: %d metrics compared\n", title, len(findings))
	for _, f := range findings {
		if !f.Changed {
			continue
		}
		changed++
		mark := "~"
		if f.Regression {
			mark = "!"
			regressed++
		}
		name := f.Metric
		if f.Bench != "" {
			name = f.Bench + "." + f.Metric
		}
		note := f.Note
		if note != "" {
			note = "  (" + note + ")"
		}
		fmt.Fprintf(w, "  %s %-32s %v -> %v%s\n", mark, name, f.Old, f.New, note)
	}
	switch {
	case regressed > 0:
		fmt.Fprintf(w, "  REGRESSION: %d metric(s) beyond threshold (of %d changed)\n", regressed, changed)
	case changed > 0:
		fmt.Fprintf(w, "  ok: %d metric(s) changed within threshold\n", changed)
	default:
		fmt.Fprintf(w, "  ok: no metric changes\n")
	}
}

// LoadedReport holds whichever BENCH_*.json schema a file was sniffed as;
// exactly one field is non-nil.
type LoadedReport struct {
	Search  *SearchReport
	CommOpt *CommOptReport
	Native  *NativeReport
}

func (r *LoadedReport) kind() string {
	switch {
	case r.Search != nil:
		return "search"
	case r.CommOpt != nil:
		return "commopt"
	case r.Native != nil:
		return "native"
	}
	return "unknown"
}

// LoadReport reads a BENCH_*.json file, detecting its schema from the
// benchmark rows: a commopt report's carry legs, a search report's carry
// enumerated counts, a native report's carry native wall columns.
func LoadReport(path string) (*LoadedReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe struct {
		Benchmarks []map[string]json.RawMessage `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := &LoadedReport{}
	var into any
	if len(probe.Benchmarks) > 0 {
		row := probe.Benchmarks[0]
		switch {
		case hasKey(row, "legs"):
			out.CommOpt = &CommOptReport{}
			into = out.CommOpt
		case hasKey(row, "enumerated"):
			out.Search = &SearchReport{}
			into = out.Search
		case hasKey(row, "native_wall_ms"):
			out.Native = &NativeReport{}
			into = out.Native
		}
	}
	if into == nil {
		return nil, fmt.Errorf("%s: not a recognized BENCH report (no search/commopt/native benchmark rows)", path)
	}
	if err := json.Unmarshal(data, into); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func hasKey(m map[string]json.RawMessage, k string) bool {
	_, ok := m[k]
	return ok
}

// DiffReportFiles diffs two report files of the same sniffed kind, printing
// to w and returning the findings.
func DiffReportFiles(w io.Writer, oldPath, newPath string, opt DiffOptions) ([]DiffFinding, error) {
	old, err := LoadReport(oldPath)
	if err != nil {
		return nil, err
	}
	new, err := LoadReport(newPath)
	if err != nil {
		return nil, err
	}
	title := fmt.Sprintf("%s report %s vs %s", old.kind(), oldPath, newPath)
	switch {
	case old.Search != nil && new.Search != nil:
		f := DiffSearchReports(old.Search, new.Search, opt)
		RenderDiff(w, title, f)
		return f, nil
	case old.CommOpt != nil && new.CommOpt != nil:
		f := DiffCommOptReports(old.CommOpt, new.CommOpt, opt)
		RenderDiff(w, title, f)
		return f, nil
	case old.Native != nil && new.Native != nil:
		f := DiffNativeReports(old.Native, new.Native, opt)
		RenderDiff(w, title, f)
		return f, nil
	}
	return nil, fmt.Errorf("report kinds differ: %s (%s) vs %s (%s)", oldPath, old.kind(), newPath, new.kind())
}

// Compare re-runs the search and commopt suites at the committed reports'
// scale/parallelism/topk and diffs the fresh numbers against them. The
// committed search report's baseline leg is skipped (wall time is never
// compared, and the baseline triples the run time); count and cycle columns
// are leg-independent. Returns every finding; the caller gates on
// Regressions.
func Compare(cfg Config, searchPath, commoptPath string, opt DiffOptions) ([]DiffFinding, error) {
	var all []DiffFinding
	if searchPath != "" {
		loaded, err := LoadReport(searchPath)
		if err != nil {
			return nil, err
		}
		committed := loaded.Search
		if committed == nil {
			return nil, fmt.Errorf("%s: not a search report", searchPath)
		}
		runCfg := cfg
		runCfg.Scale = ParseScale(committed.Scale)
		runCfg.TopK = committed.TopK
		runCfg.SkipSearchBaseline = true
		fresh, err := SearchPerf(runCfg)
		if err != nil {
			return nil, err
		}
		f := DiffSearchReports(committed, fresh, opt)
		RenderDiff(cfg.Out, "search vs committed "+searchPath, f)
		all = append(all, f...)
	}
	if commoptPath != "" {
		loaded, err := LoadReport(commoptPath)
		if err != nil {
			return nil, err
		}
		committed := loaded.CommOpt
		if committed == nil {
			return nil, fmt.Errorf("%s: not a commopt report", commoptPath)
		}
		runCfg := cfg
		runCfg.Scale = ParseScale(committed.Scale)
		fresh, err := CommOptPerf(runCfg)
		if err != nil {
			return nil, err
		}
		f := DiffCommOptReports(committed, fresh, opt)
		RenderDiff(cfg.Out, "commopt vs committed "+commoptPath, f)
		all = append(all, f...)
	}
	return all, nil
}
