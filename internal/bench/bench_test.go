package bench

import (
	"bytes"
	"strings"
	"testing"

	"phloem/internal/workloads"
)

func cfgInto(buf *bytes.Buffer) Config {
	return Config{Scale: workloads.ScaleTest, Out: buf}
}

func TestTableFormatting(t *testing.T) {
	var buf bytes.Buffer
	cfg := cfgInto(&buf)
	Table3(cfg)
	Table4(cfg)
	Table5(cfg)
	out := buf.String()
	for _, want := range []string{
		"Table III", "6-wide OOO", "16 queues max",
		"Table IV", "Road network", "road-usa",
		"Table V", "Structural", "avg nnz/row",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in tables output", want)
		}
	}
}

func TestGmean(t *testing.T) {
	if g := gmean([]float64{2, 8}); g < 3.999999 || g > 4.000001 {
		t.Errorf("gmean(2,8) = %v", g)
	}
	if g := gmean([]float64{3}); g < 2.999999 || g > 3.000001 {
		t.Errorf("gmean(3) = %v", g)
	}
	if g := gmean(nil); g != 0 {
		t.Errorf("gmean(nil) = %v", g)
	}
}

func TestReplBindingsPrivatization(t *testing.T) {
	bench, err := workloads.ByName(workloads.ScaleTest, "BFS")
	if err != nil {
		t.Fatal(err)
	}
	b := replBindings(bench.Train[0].Bind(), 2, sharedSlots("BFS"))
	if _, ok := b.Ints["nodes"]; !ok {
		t.Error("shared nodes binding missing")
	}
	if _, ok := b.Ints["r0.distances"]; !ok {
		t.Error("replica 0 distances missing")
	}
	if _, ok := b.Ints["r1.distances"]; !ok {
		t.Error("replica 1 distances missing")
	}
	if _, ok := b.Ints["distances"]; ok {
		t.Error("unprefixed private binding should not exist")
	}
	// Private copies must be independent.
	b.Ints["r0.distances"][0] = 123
	if b.Ints["r1.distances"][0] == 123 {
		t.Error("replica arrays alias each other")
	}
}

// TestFig6OnSmallInput runs the pass-ablation experiment end to end at test
// scale (the cheapest full-experiment smoke test).
func TestFig6OnSmallInput(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment in -short mode")
	}
	var buf bytes.Buffer
	if err := Fig6(cfgInto(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"serial", "Q (add queues)", "RA,CH,CV,DCE,R,Q", "speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig6 output missing %q:\n%s", want, out)
		}
	}
}
