package bench

// Suite-wide checks of the parallel search engine: for every benchmark in
// the workload suite, autotune and Search must return identical results at
// every parallelism level (run under -race by CI), and dedup must fold the
// static configuration into the enumeration on at least one benchmark.
//
// The suite sweeps train on a single input per benchmark to keep the
// full-matrix runtime tractable (the candidate enumeration, dedup, and
// bound-tightening structure they exercise is input-count independent);
// TestAutotuneMultiInputDeterminism covers the cumulative multi-input
// budget path on the cheapest benchmark, and TestSearchPerfReport runs the
// real full-training generator.

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"phloem/internal/core"
	"phloem/internal/workloads"
)

func testConfig() Config {
	return Config{Scale: workloads.ScaleTest, Out: io.Discard}
}

// sweepParallelisms returns the non-serial parallelism levels the suite
// sweeps compare against serial. The GOMAXPROCS leg is dropped under -race
// (its ~10x slowdown would blow the package time budget) where the fixed
// leg already exercises the same merge machinery.
func sweepParallelisms() []int {
	if raceEnabled {
		return []int{4}
	}
	return []int{4, 0}
}

func TestParallelAutotuneMatchesSerialAllBenchmarks(t *testing.T) {
	dedupSomewhere := false
	for _, bench := range workloads.Benchmarks(workloads.ScaleTest) {
		bench := bench
		t.Run(bench.Name, func(t *testing.T) {
			prog, err := workloads.CompileSerial(bench.SerialSource)
			if err != nil {
				t.Fatal(err)
			}
			run := func(par int) *core.Result {
				opt := autotuneOptions(testConfig(), bench)
				opt.Training = opt.Training[:1]
				opt.Parallelism = par
				res, err := core.Compile(prog, opt)
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				return res
			}
			serial := run(1)
			want := searchSignature(serial)
			for _, par := range sweepParallelisms() {
				if got := searchSignature(run(par)); got != want {
					t.Errorf("parallelism %d diverged:\nserial:   %s\nparallel: %s", par, want, got)
				}
			}
			if serial.Deduped > 0 {
				dedupSomewhere = true
			}
			t.Logf("enumerated=%d searched=%d deduped=%d skipped=%d",
				serial.Enumerated, serial.Searched, serial.Deduped, len(serial.Skips))
		})
	}
	if !dedupSomewhere {
		t.Error("no benchmark deduplicated a candidate; the static configuration should coincide with an enumerated subset somewhere in the suite")
	}
}

// TestAutotuneMultiInputDeterminism pins the cumulative budget path — one
// shared cycle budget charged across several training inputs — which the
// single-input suite sweep cannot reach. BFS is the cheapest benchmark with
// multiple training inputs.
func TestAutotuneMultiInputDeterminism(t *testing.T) {
	bench, err := workloads.ByName(workloads.ScaleTest, "BFS")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workloads.CompileSerial(bench.SerialSource)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(Trainers(bench)); n < 2 {
		t.Fatalf("BFS has %d training inputs; need at least 2", n)
	}
	run := func(par int) string {
		opt := autotuneOptions(testConfig(), bench)
		opt.Parallelism = par
		res, err := core.Compile(prog, opt)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		return searchSignature(res)
	}
	want := run(1)
	for _, par := range sweepParallelisms() {
		if got := run(par); got != want {
			t.Errorf("parallelism %d diverged:\nserial:   %s\nparallel: %s", par, want, got)
		}
	}
}

func renderSearchPoints(points []core.SearchPoint) string {
	var b strings.Builder
	for _, pt := range points {
		fmt.Fprintf(&b, "stages=%d cycles=%d subset=%v", pt.TotalStages, pt.Cycles, pt.Subset)
		if pt.Skip != nil {
			fmt.Fprintf(&b, " skip=%s err=%v", pt.Skip.Reason, pt.Skip.Err)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func TestParallelSearchMatchesSerialAllBenchmarks(t *testing.T) {
	for _, bench := range workloads.Benchmarks(workloads.ScaleTest) {
		bench := bench
		t.Run(bench.Name, func(t *testing.T) {
			prog, err := workloads.CompileSerial(bench.SerialSource)
			if err != nil {
				t.Fatal(err)
			}
			run := func(par int) string {
				opt := core.DefaultOptions()
				opt.Training = Trainers(bench)[:1]
				opt.Parallelism = par
				points, err := core.Search(prog, opt)
				if err != nil {
					t.Fatalf("parallelism %d: %v", par, err)
				}
				return renderSearchPoints(points)
			}
			want := run(1)
			for _, par := range sweepParallelisms() {
				if got := run(par); got != want {
					t.Errorf("parallelism %d diverged:\n--- serial\n%s--- parallel\n%s", par, want, got)
				}
			}
		})
	}
}

// TestSearchPerfReport exercises the BENCH_search.json generator end to end
// with the real (full) training inputs. It is the long pole of the package
// and is skipped under -short and -race; the CI benchmark smoke step runs
// the generator natively instead.
func TestSearchPerfReport(t *testing.T) {
	if testing.Short() {
		t.Skip("search perf sweep is long under -short")
	}
	if raceEnabled {
		t.Skip("search perf sweep is wall-clock timing; skipped under -race")
	}
	cfg := testConfig()
	cfg.Parallelism = 4
	// The exhaustive baseline leg multiplies losing candidates' cost by the
	// full BudgetFactor; skip it here to stay inside the package time budget
	// (the CI search-report smoke step measures all three legs).
	cfg.SkipSearchBaseline = true
	rep, err := SearchPerf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != len(workloads.Benchmarks(workloads.ScaleTest)) {
		t.Fatalf("report covers %d benchmarks", len(rep.Benchmarks))
	}
	for _, row := range rep.Benchmarks {
		if row.Enumerated <= 0 || row.SerialMS <= 0 || row.ParallelMS <= 0 || row.TopKMS <= 0 {
			t.Errorf("%s: degenerate row %+v", row.Name, row)
		}
		// RankPoints can legitimately be 0 here: with the baseline leg
		// skipped, grading falls to the engine leg, whose branch-and-bound
		// budget can abort every candidate when the serial baseline wins
		// (SpMM at full training). The CI search-report smoke runs the
		// baseline leg and asserts 2+ graded points per benchmark.
		t.Logf("%s: topk agrees=%v pruned=%d rho=%+.2f (%d points)",
			row.Name, row.TopKAgrees, row.TopKPruned, row.RankCorrelation, row.RankPoints)
	}
	t.Logf("engine parallel speedup at parallelism 4: %.2fx; top-%d speedup %.2fx; mean rho %+.2f",
		rep.ParSpeedup, rep.TopK, rep.TopKSpeedup, rep.MeanRankCorrelation)
}

func benchmarkAutotune(b *testing.B, parallelism int) {
	bench, err := workloads.ByName(workloads.ScaleTest, "BFS")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := workloads.CompileSerial(bench.SerialSource)
	if err != nil {
		b.Fatal(err)
	}
	opt := autotuneOptions(testConfig(), bench)
	opt.Parallelism = parallelism
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(prog, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAutotuneSerial(b *testing.B)   { benchmarkAutotune(b, 1) }
func BenchmarkAutotuneParallel(b *testing.B) { benchmarkAutotune(b, 4) }

func BenchmarkSearch(b *testing.B) {
	bench, err := workloads.ByName(workloads.ScaleTest, "BFS")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := workloads.CompileSerial(bench.SerialSource)
	if err != nil {
		b.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Training = Trainers(bench)
	opt.Parallelism = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Search(prog, opt); err != nil {
			b.Fatal(err)
		}
	}
}
