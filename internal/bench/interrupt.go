package bench

// The interrupt/resume experiment (`phloembench -exp interrupt`): for every
// benchmark family, run the autotune search to completion, then run it again
// with a checkpoint journal and a mid-flight cancellation, resume from the
// journal, and assert the resumed result reproduces the uninterrupted one
// byte-for-byte (winner, counters, skips, SearchPoint order). This is the
// robustness contract behind `phloemc -autotune -checkpoint/-resume`.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"phloem/internal/core"
	"phloem/internal/ir"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

// interruptAfter is where the experiment cancels the interrupted leg: after
// the serial baseline plus two candidate measurements have completed.
const interruptAfter = 3

// cancelAfterTrainers wraps trainers so cancel fires once n training
// measurements have returned (completed or failed) — a deterministic
// interruption point at Parallelism 1, a valid one at any level.
func cancelAfterTrainers(ts []core.TrainFunc, n int32, cancel context.CancelFunc) []core.TrainFunc {
	var done int32
	out := make([]core.TrainFunc, len(ts))
	for i, train := range ts {
		train := train
		out[i] = func(p *pipeline.Pipeline, b core.Budget) (uint64, error) {
			c, err := train(p, b)
			if atomic.AddInt32(&done, 1) == n {
				cancel()
			}
			return c, err
		}
	}
	return out
}

// interruptOptions is the autotune configuration all three legs share: one
// training input per family keeps the multi-run matrix tractable (the
// journal/replay structure is input-count independent).
func interruptOptions(cfg Config, bench *workloads.Benchmark, par int) core.Options {
	opt := autotuneOptions(cfg, bench)
	opt.Training = opt.Training[:1]
	opt.Parallelism = par
	return opt
}

// interruptResume runs the interrupted-then-resumed pair for one benchmark
// at one parallelism level. The journal lives at path (created by the
// interrupted leg, consumed by the resumed one).
func interruptResume(cfg Config, bench *workloads.Benchmark, prog *ir.Prog, path string,
	par int) (partial, resumed *core.Result, err error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := interruptOptions(cfg, bench, par)
	opt.Training = cancelAfterTrainers(opt.Training, interruptAfter, cancel)
	opt.Ctx = ctx
	opt.Checkpoint = path
	if partial, err = core.Compile(prog, opt); err != nil {
		return nil, nil, fmt.Errorf("interrupted: %w", err)
	}

	opt = interruptOptions(cfg, bench, par)
	opt.Checkpoint = path
	opt.Resume = true
	if resumed, err = core.Compile(prog, opt); err != nil {
		return nil, nil, fmt.Errorf("resumed: %w", err)
	}
	return partial, resumed, nil
}

// InterruptResume sweeps the interrupt-and-resume contract over every
// benchmark family at cfg.Parallelism.
func InterruptResume(cfg Config) error {
	dir, err := os.MkdirTemp("", "phloem-ckpt-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg.printf("\nInterrupt/resume: cancel after %d measurements, resume from checkpoint journal\n",
		interruptAfter)
	for _, bench := range workloads.Benchmarks(cfg.Scale) {
		prog, err := workloads.CompileSerial(bench.SerialSource)
		if err != nil {
			return fmt.Errorf("%s: %w", bench.Name, err)
		}
		ref, err := core.Compile(prog, interruptOptions(cfg, bench, cfg.Parallelism))
		if err != nil {
			return fmt.Errorf("%s uninterrupted: %w", bench.Name, err)
		}
		path := filepath.Join(dir, bench.Name+".jsonl")
		partial, resumed, err := interruptResume(cfg, bench, prog, path, cfg.Parallelism)
		if err != nil {
			return fmt.Errorf("%s: %w", bench.Name, err)
		}
		if got, want := searchSignature(resumed), searchSignature(ref); got != want {
			return fmt.Errorf("%s: resumed result differs from uninterrupted\n--- uninterrupted\n%s\n--- resumed\n%s",
				bench.Name, want, got)
		}
		cfg.printf("%-6s ok: enumerated=%d cancelled=%v after interrupt, resumed with %d replayed -> identical result (best %q)\n",
			bench.Name, ref.Enumerated, partial.Cancelled, resumed.Replayed, ref.Pipeline.Description)
	}
	return nil
}
