package bench

import (
	"fmt"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/graph"
	"phloem/internal/matrix"
	"phloem/internal/pipeline"
	"phloem/internal/taco"
	"phloem/internal/workloads"
)

// Fig12 prints the Taco-kernel speedups (static compilation flow, Sec. VI-C).
func Fig12(cfg Config) error {
	cfg.printf("\nFig. 12: Taco kernels, speedup over Taco-emitted serial code\n")
	cfg.printf("%-10s %-34s %14s %10s\n", "kernel", "expression", "data-parallel", "phloem")
	f := 1
	if cfg.Scale == workloads.ScaleFull {
		f = 2
	}
	inputs := []*matrix.CSR{
		matrix.Scattered("scircuit", 500*f, 3, 51),
		matrix.Scattered("mac-econ", 450*f, 3, 52),
		matrix.Banded("cop20k", 350*f, 11, 500, 53),
		matrix.Banded("pwtk", 300*f, 26, 100, 54),
		matrix.Banded("cant", 200*f, 32, 80, 55),
	}
	for _, k := range taco.Kernels() {
		src, err := taco.Emit(k)
		if err != nil {
			return err
		}
		serialProg, err := workloads.CompileSerial(src)
		if err != nil {
			return err
		}
		res, err := core.Compile(serialProg, core.DefaultOptions())
		if err != nil {
			return fmt.Errorf("fig12 %s: %w", k, err)
		}
		dpSrc, err := taco.EmitDP(k)
		if err != nil {
			return err
		}
		dp, err := workloads.BuildDataParallel(dpSrc, 4, 4)
		if err != nil {
			return fmt.Errorf("fig12 %s dp: %w", k, err)
		}
		var dpS, phS []float64
		for _, m := range inputs {
			b := taco.Bindings(k, m, 7)
			ser, err := runPipe(pipeline.NewSerial(serialProg), b, nil, 1, false)
			if err != nil {
				return fmt.Errorf("fig12 %s/%s serial: %w", k, m.Name, err)
			}
			bd := taco.Bindings(k, m, 7)
			bd.Scalars["tid"] = 0
			bd.Scalars["nthreads"] = 4
			dst, err := runPipe(dp, bd, nil, 1, false)
			if err != nil {
				return fmt.Errorf("fig12 %s/%s dp: %w", k, m.Name, err)
			}
			pst, err := runPipe(res.Pipeline, taco.Bindings(k, m, 7), nil, 1, false)
			if err != nil {
				return fmt.Errorf("fig12 %s/%s phloem: %w", k, m.Name, err)
			}
			dpS = append(dpS, float64(ser.Cycles)/float64(dst.Cycles))
			phS = append(phS, float64(ser.Cycles)/float64(pst.Cycles))
		}
		cfg.printf("%-10s %-34s %13.2fx %9.2fx\n", k, taco.Expression(k), gmean(dpS), gmean(phS))
	}
	cfg.printf("(paper: SpMV/MTMul/Residual ~1.5x for Phloem; SDDMM favors data-parallel)\n")
	return nil
}

// Fig14 prints the replicated-pipeline results: 4 cores x 4 threads. Each
// pipeline is replicated over a batch of independent instances (per-replica
// result arrays, shared graph structure), realizing the paper's "each
// pipeline works on a specific part of the input" without cross-replica
// distribution; EXPERIMENTS.md records the deviation.
func Fig14(cfg Config) error {
	cfg.printf("\nFig. 14: replication over 4 cores x 4 threads (speedup over 1-thread serial)\n")
	cfg.printf("%-8s %14s %14s %14s\n", "bench", "data-parallel", "phloem-repl", "manual-repl")
	const R = 4
	for _, name := range []string{"BFS", "CC", "PRD", "Radii"} {
		bench, err := workloads.ByName(cfg.Scale, name)
		if err != nil {
			return err
		}
		in := bench.Test[len(bench.Test)-1]
		serialProg, err := workloads.CompileSerial(bench.SerialSource)
		if err != nil {
			return err
		}
		// Serial cost of the whole batch: R independent instances in turn
		// (for Radii, the R source groups together equal one full run, so
		// one serial run is the baseline).
		ser, err := runPipe(pipeline.NewSerial(serialProg), in.Bind(), in, 1, true)
		if err != nil {
			return err
		}
		serBatch := ser.Cycles * R

		// Data-parallel at 16 threads over the same batch: R groups of 4
		// threads, one group per instance.
		dp, err := workloads.BuildDataParallel(bench.DPSource, 4, 4)
		if err != nil {
			return err
		}
		dpRepl, err := pipeline.Replicate(dp, R, sharedSlots(name), nil)
		if err != nil {
			return err
		}
		dpStats, err := runPipe(dpRepl, replBindings(in.BindDP(4), R, sharedSlots(name)), nil, R, false)
		if err != nil {
			return fmt.Errorf("fig14 %s dp: %w", name, err)
		}

		res, err := core.Compile(serialProg, autotuneOptions(cfg, bench))
		if err != nil {
			return err
		}
		phRepl, err := pipeline.Replicate(res.Pipeline, R, sharedSlots(name), nil)
		if err != nil {
			return err
		}
		phStats, err := runPipe(phRepl, replBindings(in.Bind(), R, sharedSlots(name)), nil, R, false)
		if err != nil {
			return fmt.Errorf("fig14 %s phloem: %w", name, err)
		}

		manSpeed := "-"
		if bench.Manual != nil {
			man, err := bench.Manual()
			if err != nil {
				return err
			}
			manRepl, err := pipeline.Replicate(man, R, sharedSlots(name), nil)
			if err != nil {
				return err
			}
			manStats, err := runPipe(manRepl, replBindings(in.Bind(), R, sharedSlots(name)), nil, R, false)
			if err != nil {
				return fmt.Errorf("fig14 %s manual: %w", name, err)
			}
			manSpeed = fmt.Sprintf("%13.2fx", float64(serBatch)/float64(manStats.Cycles))
		}
		cfg.printf("%-8s %13.2fx %13.2fx %14s\n", name,
			float64(serBatch)/float64(dpStats.Cycles),
			float64(serBatch)/float64(phStats.Cycles), manSpeed)
	}
	cfg.printf("(paper: BFS ~10x vs manual 12x; CC ~4x vs 7x; Radii beats manual)\n")
	return nil
}

// sharedSlots lists the read-only structures replicas share.
func sharedSlots(bench string) []string {
	switch bench {
	case "SpMM":
		return []string{"arows", "acols", "avals", "btrows", "btcols", "btvals"}
	default:
		return []string{"nodes", "edges"}
	}
}

// replBindings prefixes private array bindings for each replica. Radii's
// source partitioning would split the visited masks; for the batch model
// every replica gets its own copy of the private arrays.
func replBindings(b pipeline.Bindings, replicas int, shared []string) pipeline.Bindings {
	sharedSet := map[string]bool{}
	for _, s := range shared {
		sharedSet[s] = true
	}
	out := pipeline.Bindings{
		Ints:         map[string][]int64{},
		Floats:       map[string][]float64{},
		Scalars:      b.Scalars,
		FloatScalars: b.FloatScalars,
	}
	for name, data := range b.Ints {
		if sharedSet[name] {
			out.Ints[name] = data
			continue
		}
		for r := 0; r < replicas; r++ {
			out.Ints[fmt.Sprintf("r%d.%s", r, name)] = append([]int64(nil), data...)
		}
	}
	for name, data := range b.Floats {
		if sharedSet[name] {
			out.Floats[name] = data
			continue
		}
		for r := 0; r < replicas; r++ {
			out.Floats[fmt.Sprintf("r%d.%s", r, name)] = append([]float64(nil), data...)
		}
	}
	return out
}

// Table3 prints the evaluated system configuration.
func Table3(cfg Config) {
	c := arch.DefaultConfig(4)
	cfg.printf("\nTable III: configuration of the evaluated system\n")
	cfg.printf("  Cores      1 or 4 cores, x86-64-like, %d-wide OOO issue, %d-thread SMT, %d-entry window\n",
		c.IssueWidth, c.ThreadsPerCore, c.WindowSize)
	cfg.printf("  Pipette    %d queues max; %d RAs; queues up to %d elements deep\n",
		c.MaxQueues, c.MaxRAs, c.QueueDepth)
	cfg.printf("  L1 cache   %d KB/core, %d-way, %d-cycle latency\n",
		c.Mem.L1.SizeBytes>>10, c.Mem.L1.Ways, c.Mem.L1.Latency)
	cfg.printf("  L2 cache   %d KB/core, %d-way, %d-cycle latency\n",
		c.Mem.L2.SizeBytes>>10, c.Mem.L2.Ways, c.Mem.L2.Latency)
	cfg.printf("  L3 cache   %d MB/core, %d-way, %d-cycle latency\n",
		c.Mem.L3.SizeBytes>>20, c.Mem.L3.Ways, c.Mem.L3.Latency)
	cfg.printf("  Main mem   %d-cycle minimum latency, %d controllers\n",
		c.Mem.MemMinLatency, c.Mem.MemControllers)
}

// Table4 prints the graph-input inventory.
func Table4(cfg Config) {
	cfg.printf("\nTable IV: input graphs (synthetic stand-ins, sorted by edges)\n")
	cfg.printf("%-26s %-12s %10s %10s %10s\n", "domain", "graph", "vertices", "edges", "avg deg")
	suite := append(graph.TrainingInputs(), graph.TestInputs()...)
	for _, in := range suite {
		g := in.Graph
		cfg.printf("%-26s %-12s %10d %10d %10.1f\n",
			in.Domain, g.Name, g.NumVertices(), g.NumEdges(), g.AvgDegree())
	}
}

// Table5 prints the matrix-input inventory.
func Table5(cfg Config) {
	cfg.printf("\nTable V: input matrices (synthetic stand-ins, sorted by nnz/row)\n")
	cfg.printf("%-26s %-14s %10s %12s\n", "domain", "matrix", "size", "avg nnz/row")
	suite := append(matrix.SpMMTrainingInputs(), matrix.SpMMTestInputs()...)
	suite = append(suite, matrix.TacoTestInputs()...)
	for _, in := range suite {
		m := in.M
		cfg.printf("%-26s %-14s %10d %12.1f\n", in.Domain, m.Name, m.N, m.AvgNNZPerRow())
	}
}

// All runs every experiment in order.
func All(cfg Config) error {
	Table3(cfg)
	Table4(cfg)
	Table5(cfg)
	if err := Fig6(cfg); err != nil {
		return err
	}
	var results []*BenchResult
	for _, b := range workloads.Benchmarks(cfg.Scale) {
		cfg.printf("\nrunning %s...\n", b.Name)
		r, err := RunBenchmark(cfg, b)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	Fig9(cfg, results)
	Fig10(cfg, results)
	Fig11(cfg, results)
	if err := Fig12(cfg); err != nil {
		return err
	}
	if err := Fig13(cfg); err != nil {
		return err
	}
	return Fig14(cfg)
}
