package workloads

import (
	"fmt"

	"phloem/internal/arch"
	"phloem/internal/ir"
	"phloem/internal/pipeline"
)

// Data-parallel baselines (Sec. VI-B): each benchmark gets a competitive
// multithreaded implementation in the same C subset, with vertices
// range-partitioned across threads and barrier-synchronized sweeps. These
// mirror the structure of Ligra-style shared-memory implementations; as in
// the paper, the synchronization and partition bookkeeping adds dynamic
// instructions relative to the serial kernel.

// BFSDPSource is level-synchronized dense BFS: each level, every thread
// scans its vertex range for frontier vertices and relaxes their neighbors.
const BFSDPSource = `
void bfs_dp(int* restrict nodes, int* restrict edges, int* restrict distances,
            int* restrict changed, int root, int n, int tid, int nthreads) {
  int level = 0;
  int go = 1;
  int lo = tid * n / nthreads;
  int hi = (tid + 1) * n / nthreads;
  while (go > 0) {
    int local = 0;
    for (int v = lo; v < hi; v = v + 1) {
      int dv = distances[v];
      if (dv == level) {
        int edge_start = nodes[v];
        int edge_end = nodes[v + 1];
        int nd = level + 1;
        for (int e = edge_start; e < edge_end; e = e + 1) {
          int ngh = edges[e];
          int old = distances[ngh];
          if (nd < old) {
            distances[ngh] = nd;
            local = 1;
          }
        }
      }
    }
    changed[tid] = local;
    barrier();
    go = 0;
    for (int t = 0; t < nthreads; t = t + 1) {
      go = go | changed[t];
    }
    level = level + 1;
    barrier();
  }
}
`

// CCDPSource is label propagation with a partitioned sweep per iteration.
const CCDPSource = `
void cc_dp(int* restrict nodes, int* restrict edges, int* restrict labels,
           int* restrict changed, int n, int tid, int nthreads) {
  int go = 1;
  int lo = tid * n / nthreads;
  int hi = (tid + 1) * n / nthreads;
  while (go > 0) {
    int local = 0;
    for (int v = lo; v < hi; v = v + 1) {
      int edge_start = nodes[v];
      int edge_end = nodes[v + 1];
      int best = 1099511627776;
      for (int e = edge_start; e < edge_end; e = e + 1) {
        int ngh = edges[e];
        int ln = labels[ngh];
        if (ln < best) {
          best = ln;
        }
      }
      int lv = labels[v];
      if (best < lv) {
        labels[v] = best;
        local = 1;
      }
    }
    changed[tid] = local;
    barrier();
    go = 0;
    for (int t = 0; t < nthreads; t = t + 1) {
      go = go | changed[t];
    }
    barrier();
  }
}
`

// RadiiDPSource partitions the per-round mask sweep.
const RadiiDPSource = `
void radii_dp(int* restrict nodes, int* restrict edges, int* restrict visited,
              int* restrict next_visited, int* restrict radii,
              int* restrict changed, int n, int tid, int nthreads) {
  int round = 1;
  int go = 1;
  int lo = tid * n / nthreads;
  int hi = (tid + 1) * n / nthreads;
  while (go > 0) {
    int local = 0;
    for (int v = lo; v < hi; v = v + 1) {
      int edge_start = nodes[v];
      int edge_end = nodes[v + 1];
      int m = 0;
      for (int e = edge_start; e < edge_end; e = e + 1) {
        int ngh = edges[e];
        int mv = visited[ngh];
        m = m | mv;
      }
      int m0 = visited[v];
      int mnew = m | m0;
      next_visited[v] = mnew;
      if (mnew != m0) {
        radii[v] = round;
        local = 1;
      }
    }
    changed[tid] = local;
    barrier();
    go = 0;
    for (int t = 0; t < nthreads; t = t + 1) {
      go = go | changed[t];
    }
    round = round + 1;
    if (tid == 0) {
      swap(visited, next_visited);
    }
    barrier();
  }
}
`

// PRDDPSource partitions both phases. Cross-partition delta pushes go to a
// per-thread private accumulation array (next_delta is sized nthreads*n) to
// avoid write races; the apply phase reduces the private copies.
const PRDDPSource = `
void prd_dp(int* restrict nodes, int* restrict edges, float* restrict delta,
            float* restrict next_delta, float* restrict rank,
            int n, int niter, float threshold, float alpha, int tid, int nthreads) {
  int lo = tid * n / nthreads;
  int hi = (tid + 1) * n / nthreads;
  for (int it = 0; it < niter; it = it + 1) {
    int base = tid * n;
    for (int v = lo; v < hi; v = v + 1) {
      float d = delta[v];
      if (fabs(d) > threshold) {
        int edge_start = nodes[v];
        int edge_end = nodes[v + 1];
        int deg = edge_end - edge_start;
        if (deg > 0) {
          float w = alpha * d / (float)deg;
          for (int e = edge_start; e < edge_end; e = e + 1) {
            int ngh = edges[e];
            next_delta[base + ngh] = next_delta[base + ngh] + w;
          }
        }
      }
    }
    barrier();
    for (int u = lo; u < hi; u = u + 1) {
      float nd = 0.0;
      for (int t = 0; t < nthreads; t = t + 1) {
        int idx = t * n + u;
        nd = nd + next_delta[idx];
        next_delta[idx] = 0.0;
      }
      rank[u] = rank[u] + nd;
      delta[u] = nd;
    }
    barrier();
  }
}
`

// SpMMDPSource partitions output rows across threads (no races, no barriers).
const SpMMDPSource = `
void spmm_dp(int* restrict arows, int* restrict acols, float* restrict avals,
             int* restrict btrows, int* restrict btcols, float* restrict btvals,
             float* restrict out, int n, int tid, int nthreads) {
  int lo = tid * n / nthreads;
  int hi = (tid + 1) * n / nthreads;
  for (int i = lo; i < hi; i = i + 1) {
    int ka0 = arows[i];
    int kaEnd = arows[i + 1];
    for (int j = 0; j < n; j = j + 1) {
      int kb = btrows[j];
      int kbEnd = btrows[j + 1];
      int ka = ka0;
      float acc = 0.0;
      while (ka < kaEnd && kb < kbEnd) {
        int ca = acols[ka];
        int cb = btcols[kb];
        if (ca == cb) {
          float pa = avals[ka];
          float pb = btvals[kb];
          acc = acc + pa * pb;
          ka = ka + 1;
          kb = kb + 1;
        } else {
          if (ca < cb) {
            ka = ka + 1;
          } else {
            kb = kb + 1;
          }
        }
      }
      if (acc != 0.0) {
        out[i * n + j] = acc;
      }
    }
  }
}
`

// BuildDataParallel compiles a (tid, nthreads)-parameterized kernel and
// instantiates it as T worker stages on the given machine shape.
func BuildDataParallel(src string, threads, threadsPerCore int) (*pipeline.Pipeline, error) {
	p, err := CompileSerial(src)
	if err != nil {
		return nil, err
	}
	pipe := &pipeline.Pipeline{Prog: p, Description: fmt.Sprintf("data-parallel, %d threads", threads)}
	for t := 0; t < threads; t++ {
		pipe.Stages = append(pipe.Stages, &pipeline.Stage{
			Name: fmt.Sprintf("%s.worker%d", p.Name, t),
			Body: p.Body,
			Thread: arch.ThreadID{
				Core:   t / threadsPerCore,
				Thread: t % threadsPerCore,
			},
			Overrides: map[string]int64{"tid": int64(t)},
		})
	}
	return pipe, nil
}

// dpScalars merges the thread-count scalars into a binding set.
func dpScalars(b pipeline.Bindings, threads int) pipeline.Bindings {
	out := b
	out.Scalars = map[string]int64{}
	for k, v := range b.Scalars {
		out.Scalars[k] = v
	}
	out.Scalars["tid"] = 0 // per-stage overrides replace this
	out.Scalars["nthreads"] = int64(threads)
	return out
}

var _ = ir.KInt // keep ir imported for future manual-variant builders
