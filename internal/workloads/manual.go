package workloads

import (
	"phloem/internal/arch"
	"phloem/internal/ir"
	"phloem/internal/pipeline"
)

// Hand-optimized ("manually pipelined") variants, written directly in the
// Phloem IR the way the Pipette paper's programmers wrote assembly-level
// pipelines. They encode application insights the compiler does not derive:
//
//   - Manual BFS merges the fringe driver and the vertex doubler into one
//     thread and exploits that the driver knows each level's exact size, so
//     no per-level control traffic flows on the scan chain (only a level-end
//     marker for the update stage).
//   - Manual SpMM streams both coordinate lists through SCAN accelerators
//     and, upon seeing one list's end-of-range control value, *skips* the
//     rest of the other list — the bespoke merge-intersect trick of Sec. VII
//     that Phloem cannot infer from serial code.

// control codes for the manual pipelines
const (
	manualLevelEnd = arch.CtrlUser + 20
	manualRangeEnd = arch.CtrlUser + 21
)

type mb struct {
	p *ir.Prog
}

func (b *mb) v(name string, k ir.Kind) ir.Var { return b.p.NewVar(name, k) }

func assign(dst ir.Var, r ir.Rval) ir.Stmt { return &ir.Assign{Dst: dst, Src: r} }
func mov(dst ir.Var, o ir.Operand) ir.Stmt {
	return &ir.Assign{Dst: dst, Src: &ir.RvalUn{Op: ir.OpMov, A: o}}
}
func fmov(dst ir.Var, o ir.Operand) ir.Stmt {
	return &ir.Assign{Dst: dst, Src: &ir.RvalUn{Op: ir.OpMov, Float: true, A: o}}
}
func bin(dst ir.Var, op ir.BinOp, a, b ir.Operand) ir.Stmt {
	return &ir.Assign{Dst: dst, Src: &ir.RvalBin{Op: op, A: a, B: b}}
}
func fbin(dst ir.Var, op ir.BinOp, a, b ir.Operand) ir.Stmt {
	return &ir.Assign{Dst: dst, Src: &ir.RvalBin{Op: op, Float: true, A: a, B: b}}
}
func deq(dst ir.Var, q int) ir.Stmt { return &ir.Assign{Dst: dst, Src: &ir.RvalDeq{Q: q}} }
func load(dst ir.Var, slot int, idx ir.Operand) ir.Stmt {
	return &ir.Assign{Dst: dst, Src: &ir.RvalLoad{Slot: slot, Idx: idx}}
}
func isctrl(dst ir.Var, o ir.Operand) ir.Stmt {
	return &ir.Assign{Dst: dst, Src: &ir.RvalUn{Op: ir.OpIsCtrl, A: o}}
}

// ManualBFS builds the hand-optimized BFS pipeline: 2 threads + 3 chained
// RAs (fringe scan -> nodes indirect -> edges scan).
func ManualBFS() (*pipeline.Pipeline, error) {
	p := &ir.Prog{Name: "bfs-manual"}
	b := &mb{p: p}
	// Slots match BFSBindings.
	nodes := 0
	edges := 1
	distances := 2
	curFringe := 3
	nextFringe := 4
	p.Slots = []ir.SlotInfo{
		{Name: "nodes", Kind: ir.KInt}, {Name: "edges", Kind: ir.KInt},
		{Name: "distances", Kind: ir.KInt}, {Name: "cur_fringe", Kind: ir.KInt},
		{Name: "next_fringe", Kind: ir.KInt},
	}
	root := b.v("root", ir.KInt)
	p.Vars[root].Param = true
	nParam := b.v("n", ir.KInt)
	p.Vars[nParam].Param = true
	p.ScalarParams = []ir.Var{root, nParam}

	pipe := &pipeline.Pipeline{Prog: p, Description: "manually pipelined (Pipette-style)"}
	qScanIn := pipe.AddQueue("scan.in")
	qScanOut := pipe.AddQueue("scan.out")
	qNodesIn := pipe.AddQueue("nodes.in")
	qNodesOut := pipe.AddQueue("nodes.out") // chained into the edges scan
	qEdgesOut := pipe.AddQueue("edges.out")
	qFb := pipe.AddQueue("fb.size")
	pipe.RAs = []arch.RASpec{
		{Name: "scan.cur_fringe", Mode: arch.RAScan, Slot: curFringe, InQ: qScanIn, OutQ: qScanOut},
		{Name: "ind.nodes", Mode: arch.RAIndirect, Slot: nodes, InQ: qNodesIn, OutQ: qNodesOut},
		{Name: "scan.edges", Mode: arch.RAScan, Slot: edges, InQ: qNodesOut, OutQ: qEdgesOut},
	}

	// Stage 0: fringe driver + vertex doubler (merged by hand).
	{
		curSize := b.v("cur_size", ir.KInt)
		i := b.v("i", ir.KInt)
		v := b.v("v", ir.KInt)
		vp1 := b.v("vp1", ir.KInt)
		cond := b.v("cond", ir.KInt)
		icond := b.v("icond", ir.KInt)
		body := []ir.Stmt{
			mov(curSize, ir.C(1)),
			&ir.Loop{ID: 0,
				Pre:  []ir.Stmt{bin(cond, ir.OpGT, ir.V(curSize), ir.C(0))},
				Cond: ir.V(cond),
				Body: []ir.Stmt{
					&ir.Enq{Q: qScanIn, Val: ir.C(0)},
					&ir.Enq{Q: qScanIn, Val: ir.V(curSize)},
					mov(i, ir.C(0)),
					&ir.Loop{ID: 1,
						Pre:  []ir.Stmt{bin(icond, ir.OpLT, ir.V(i), ir.V(curSize))},
						Cond: ir.V(icond),
						Body: []ir.Stmt{
							deq(v, qScanOut),
							&ir.Enq{Q: qNodesIn, Val: ir.V(v)},
							bin(vp1, ir.OpAdd, ir.V(v), ir.C(1)),
							&ir.Enq{Q: qNodesIn, Val: ir.V(vp1)},
							bin(i, ir.OpAdd, ir.V(i), ir.C(1)),
						},
					},
					&ir.EnqCtrl{Q: qNodesIn, Code: manualLevelEnd},
					deq(curSize, qFb),
					&ir.Swap{A: curFringe, B: nextFringe},
				},
			},
			&ir.EnqCtrl{Q: qNodesIn, Code: arch.CtrlEnd},
		}
		pipe.Stages = append(pipe.Stages, &pipeline.Stage{
			Name: "bfs-manual.driver", Body: body,
			Thread: arch.ThreadID{Core: 0, Thread: 0},
		})
	}
	// Stage 1: update, with a control-value handler for level ends.
	{
		curDist := b.v("cur_dist", ir.KInt)
		nextSize := b.v("next_size", ir.KInt)
		ngh := b.v("ngh", ir.KInt)
		old := b.v("old", ir.KInt)
		lt := b.v("lt", ir.KInt)
		code := b.v("code", ir.KInt)
		isEnd := b.v("is_end", ir.KInt)
		body := []ir.Stmt{
			mov(curDist, ir.C(1)),
			mov(nextSize, ir.C(0)),
			&ir.SetHandler{Q: qEdgesOut, Label: "handler"},
			&ir.Label{Name: "probe"},
			deq(ngh, qEdgesOut),
			load(old, distances, ir.V(ngh)),
			bin(lt, ir.OpLT, ir.V(curDist), ir.V(old)),
			&ir.If{Cond: ir.V(lt), Then: []ir.Stmt{
				&ir.Store{Slot: distances, Idx: ir.V(ngh), Val: ir.V(curDist)},
				&ir.Store{Slot: nextFringe, Idx: ir.V(nextSize), Val: ir.V(ngh)},
				bin(nextSize, ir.OpAdd, ir.V(nextSize), ir.C(1)),
			}},
			&ir.Goto{Name: "probe"},
			&ir.Label{Name: "handler"},
			assign(code, &ir.RvalHandlerVal{}),
			bin(isEnd, ir.OpEQ, ir.V(code), ir.C(manualLevelEnd)),
			&ir.If{Cond: ir.V(isEnd), Then: []ir.Stmt{
				&ir.Enq{Q: qFb, Val: ir.V(nextSize)},
				mov(nextSize, ir.C(0)),
				bin(curDist, ir.OpAdd, ir.V(curDist), ir.C(1)),
				&ir.Goto{Name: "probe"},
			}},
			&ir.Label{Name: "done"},
		}
		pipe.Stages = append(pipe.Stages, &pipeline.Stage{
			Name: "bfs-manual.update", Body: body,
			Thread: arch.ThreadID{Core: 0, Thread: 1},
		})
	}
	return pipe, nil
}

// ManualSpMM builds the hand-optimized SpMM pipeline with the bespoke
// merge-intersect skip: 2 threads + 4 SCAN RAs.
func ManualSpMM() (*pipeline.Pipeline, error) {
	p := &ir.Prog{Name: "spmm-manual"}
	b := &mb{p: p}
	arows, acols, avals := 0, 1, 2
	btrows, btcols, btvals := 3, 4, 5
	out := 6
	p.Slots = []ir.SlotInfo{
		{Name: "arows", Kind: ir.KInt}, {Name: "acols", Kind: ir.KInt},
		{Name: "avals", Kind: ir.KFloat}, {Name: "btrows", Kind: ir.KInt},
		{Name: "btcols", Kind: ir.KInt}, {Name: "btvals", Kind: ir.KFloat},
		{Name: "out", Kind: ir.KFloat},
	}
	nParam := b.v("n", ir.KInt)
	p.Vars[nParam].Param = true
	p.ScalarParams = []ir.Var{nParam}

	pipe := &pipeline.Pipeline{Prog: p, Description: "manually pipelined (merge-skip)"}
	qacIn := pipe.AddQueue("acols.in")
	qacOut := pipe.AddQueue("acols.out")
	qavIn := pipe.AddQueue("avals.in")
	qavOut := pipe.AddQueue("avals.out")
	qbcIn := pipe.AddQueue("btcols.in")
	qbcOut := pipe.AddQueue("btcols.out")
	qbvIn := pipe.AddQueue("btvals.in")
	qbvOut := pipe.AddQueue("btvals.out")
	pipe.RAs = []arch.RASpec{
		{Name: "scan.acols", Mode: arch.RAScan, Slot: acols, InQ: qacIn, OutQ: qacOut,
			EmitNext: true, NextCode: manualRangeEnd},
		{Name: "scan.avals", Mode: arch.RAScan, Slot: avals, InQ: qavIn, OutQ: qavOut},
		{Name: "scan.btcols", Mode: arch.RAScan, Slot: btcols, InQ: qbcIn, OutQ: qbcOut,
			EmitNext: true, NextCode: manualRangeEnd},
		{Name: "scan.btvals", Mode: arch.RAScan, Slot: btvals, InQ: qbvIn, OutQ: qbvOut},
	}

	// Stage 0: range driver.
	{
		i := b.v("i", ir.KInt)
		j := b.v("j", ir.KInt)
		ip1 := b.v("ip1", ir.KInt)
		jp1 := b.v("jp1", ir.KInt)
		ka0 := b.v("ka0", ir.KInt)
		kaEnd := b.v("kaEnd", ir.KInt)
		kb0 := b.v("kb0", ir.KInt)
		kbEnd := b.v("kbEnd", ir.KInt)
		ci := b.v("ci", ir.KInt)
		cj := b.v("cj", ir.KInt)
		body := []ir.Stmt{
			mov(i, ir.C(0)),
			&ir.Loop{ID: 0,
				Pre:  []ir.Stmt{bin(ci, ir.OpLT, ir.V(i), ir.V(nParam))},
				Cond: ir.V(ci),
				Body: []ir.Stmt{
					bin(ip1, ir.OpAdd, ir.V(i), ir.C(1)),
					load(ka0, arows, ir.V(i)),
					load(kaEnd, arows, ir.V(ip1)),
					mov(j, ir.C(0)),
					&ir.Loop{ID: 1,
						Pre:  []ir.Stmt{bin(cj, ir.OpLT, ir.V(j), ir.V(nParam))},
						Cond: ir.V(cj),
						Body: []ir.Stmt{
							bin(jp1, ir.OpAdd, ir.V(j), ir.C(1)),
							load(kb0, btrows, ir.V(j)),
							load(kbEnd, btrows, ir.V(jp1)),
							&ir.Enq{Q: qacIn, Val: ir.V(ka0)},
							&ir.Enq{Q: qacIn, Val: ir.V(kaEnd)},
							&ir.Enq{Q: qavIn, Val: ir.V(ka0)},
							&ir.Enq{Q: qavIn, Val: ir.V(kaEnd)},
							&ir.Enq{Q: qbcIn, Val: ir.V(kb0)},
							&ir.Enq{Q: qbcIn, Val: ir.V(kbEnd)},
							&ir.Enq{Q: qbvIn, Val: ir.V(kb0)},
							&ir.Enq{Q: qbvIn, Val: ir.V(kbEnd)},
							bin(j, ir.OpAdd, ir.V(j), ir.C(1)),
						},
					},
					bin(i, ir.OpAdd, ir.V(i), ir.C(1)),
				},
			},
		}
		pipe.Stages = append(pipe.Stages, &pipeline.Stage{
			Name: "spmm-manual.driver", Body: body,
			Thread: arch.ThreadID{Core: 0, Thread: 0},
		})
	}
	// Stage 1: merge-intersect with the end-of-run skip.
	{
		i := b.v("mi", ir.KInt)
		j := b.v("mj", ir.KInt)
		acc := b.v("acc", ir.KFloat)
		ca := b.v("ca", ir.KInt)
		cb := b.v("cb", ir.KInt)
		av := b.v("av", ir.KFloat)
		bv := b.v("bv", ir.KFloat)
		junk := b.v("junk", ir.KFloat)
		t1 := b.v("t1", ir.KInt)
		t2 := b.v("t2", ir.KInt)
		t3 := b.v("t3", ir.KInt)
		prod := b.v("prod", ir.KFloat)
		idx := b.v("idx", ir.KInt)
		nz := b.v("nz", ir.KInt)
		fzero := ir.Operand{IsConst: true, Imm: 0} // 0.0 bits == 0
		body := []ir.Stmt{
			mov(i, ir.C(0)),
			mov(j, ir.C(0)),
			&ir.Label{Name: "cell"},
			fmov(acc, fzero),
			deq(ca, qacOut),
			deq(cb, qbcOut),
			&ir.Label{Name: "loop"},
			isctrl(t1, ir.V(ca)),
			&ir.If{Cond: ir.V(t1), Then: []ir.Stmt{ // A exhausted: skip rest of B
				&ir.Label{Name: "skipb"},
				isctrl(t2, ir.V(cb)),
				&ir.If{Cond: ir.V(t2), Then: []ir.Stmt{&ir.Goto{Name: "celldone"}}},
				deq(junk, qbvOut),
				deq(cb, qbcOut),
				&ir.Goto{Name: "skipb"},
			}},
			isctrl(t2, ir.V(cb)),
			&ir.If{Cond: ir.V(t2), Then: []ir.Stmt{ // B exhausted: skip rest of A
				&ir.Label{Name: "skipa"},
				isctrl(t3, ir.V(ca)),
				&ir.If{Cond: ir.V(t3), Then: []ir.Stmt{&ir.Goto{Name: "celldone"}}},
				deq(junk, qavOut),
				deq(ca, qacOut),
				&ir.Goto{Name: "skipa"},
			}},
			bin(t3, ir.OpEQ, ir.V(ca), ir.V(cb)),
			&ir.If{Cond: ir.V(t3), Then: []ir.Stmt{
				deq(av, qavOut),
				deq(bv, qbvOut),
				fbin(prod, ir.OpMul, ir.V(av), ir.V(bv)),
				fbin(acc, ir.OpAdd, ir.V(acc), ir.V(prod)),
				deq(ca, qacOut),
				deq(cb, qbcOut),
				&ir.Goto{Name: "loop"},
			}},
			bin(t3, ir.OpLT, ir.V(ca), ir.V(cb)),
			&ir.If{Cond: ir.V(t3), Then: []ir.Stmt{
				deq(junk, qavOut),
				deq(ca, qacOut),
				&ir.Goto{Name: "loop"},
			}},
			deq(junk, qbvOut),
			deq(cb, qbcOut),
			&ir.Goto{Name: "loop"},
			&ir.Label{Name: "celldone"},
			&ir.Assign{Dst: nz, Src: &ir.RvalBin{Op: ir.OpNE, Float: true, A: ir.V(acc), B: fzero}},
			&ir.If{Cond: ir.V(nz), Then: []ir.Stmt{
				bin(idx, ir.OpMul, ir.V(i), ir.V(nParam)),
				bin(idx, ir.OpAdd, ir.V(idx), ir.V(j)),
				&ir.Store{Slot: out, Idx: ir.V(idx), Val: ir.V(acc)},
			}},
			bin(j, ir.OpAdd, ir.V(j), ir.C(1)),
			bin(t1, ir.OpEQ, ir.V(j), ir.V(nParam)),
			&ir.If{Cond: ir.V(t1), Then: []ir.Stmt{
				mov(j, ir.C(0)),
				bin(i, ir.OpAdd, ir.V(i), ir.C(1)),
			}},
			bin(t2, ir.OpLT, ir.V(i), ir.V(nParam)),
			&ir.If{Cond: ir.V(t2), Then: []ir.Stmt{&ir.Goto{Name: "cell"}}},
		}
		pipe.Stages = append(pipe.Stages, &pipeline.Stage{
			Name: "spmm-manual.merge", Body: body,
			Thread: arch.ThreadID{Core: 0, Thread: 1},
		})
	}
	return pipe, nil
}
