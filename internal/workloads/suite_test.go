package workloads_test

import (
	"testing"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

// runAndVerify instantiates, runs, and verifies a pipeline on an input.
func runAndVerify(t *testing.T, pipe *pipeline.Pipeline, b pipeline.Bindings,
	in *workloads.Input, cores int) uint64 {
	t.Helper()
	inst, err := pipeline.Instantiate(pipe, arch.DefaultConfig(cores), b)
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	st, err := inst.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := in.Verify(inst); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return st.Cycles
}

// TestAllBenchmarksAllVariants is the backbone integration test: every
// benchmark's serial, Phloem (static, all passes), data-parallel, and manual
// variant must produce reference-identical results on the training inputs.
func TestAllBenchmarksAllVariants(t *testing.T) {
	for _, bench := range workloads.Benchmarks(workloads.ScaleTest) {
		bench := bench
		t.Run(bench.Name, func(t *testing.T) {
			serial, err := workloads.CompileSerial(bench.SerialSource)
			if err != nil {
				t.Fatalf("serial compile: %v", err)
			}
			res, err := core.Compile(serial, core.DefaultOptions())
			if err != nil {
				t.Fatalf("phloem compile: %v", err)
			}
			t.Logf("phloem: %s", res.Pipeline.Describe())
			dp, err := workloads.BuildDataParallel(bench.DPSource, 4, 4)
			if err != nil {
				t.Fatalf("data-parallel compile: %v", err)
			}
			var manual *pipeline.Pipeline
			if bench.Manual != nil {
				manual, err = bench.Manual()
				if err != nil {
					t.Fatalf("manual build: %v", err)
				}
			}

			in := bench.Train[1] // the road-like training input
			sc := runAndVerify(t, pipeline.NewSerial(serial), in.Bind(), in, 1)
			pc := runAndVerify(t, res.Pipeline, in.Bind(), in, 1)
			dc := runAndVerify(t, dp, in.BindDP(4), in, 1)
			t.Logf("%s on %s: serial=%d phloem=%d (%.2fx) dp=%d (%.2fx)",
				bench.Name, in.Name, sc, pc, float64(sc)/float64(pc),
				dc, float64(sc)/float64(dc))
			if manual != nil {
				mc := runAndVerify(t, manual, in.Bind(), in, 1)
				t.Logf("%s manual=%d (%.2fx)", bench.Name, mc, float64(sc)/float64(mc))
			}
		})
	}
}

// TestAutotuneBFS exercises the profile-guided flow end to end.
func TestAutotuneBFS(t *testing.T) {
	bench, err := workloads.ByName(workloads.ScaleTest, "BFS")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := workloads.CompileSerial(bench.SerialSource)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Mode = core.Autotune
	for _, in := range bench.Train {
		in := in
		opt.Training = append(opt.Training, func(p *pipeline.Pipeline, b core.Budget) (uint64, error) {
			inst, err := pipeline.Instantiate(p, arch.DefaultConfig(1), in.Bind())
			if err != nil {
				return 0, err
			}
			b.Apply(inst.Machine)
			st, err := inst.Run()
			if err != nil {
				return 0, err
			}
			if err := in.Verify(inst); err != nil {
				return 0, err
			}
			return st.Cycles, nil
		})
	}
	res, err := core.Compile(serial, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Searched < 5 {
		t.Errorf("autotuner searched only %d pipelines", res.Searched)
	}
	t.Logf("searched %d pipelines, best %d train cycles: %s",
		res.Searched, res.TrainCycles, res.Pipeline.Describe())
	in := bench.Test[0]
	runAndVerify(t, res.Pipeline, in.Bind(), in, 1)
}
