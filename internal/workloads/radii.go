package workloads

import (
	"fmt"
	"math/rand"

	"phloem/internal/graph"
	"phloem/internal/pipeline"
)

// RadiiSource estimates the graph radius by running K=64 simultaneous
// breadth-first searches from sampled vertices, encoded as 64-bit visited
// masks (the Ligra formulation the paper evaluates). Each round ORs every
// vertex's neighborhood masks; a vertex whose mask grew records the round as
// its eccentricity estimate. visited/next_visited flip via swap(), which
// epoch-synchronizes their accesses across stages.
const RadiiSource = `
#pragma phloem
void radii(int* restrict nodes, int* restrict edges, int* restrict visited,
           int* restrict next_visited, int* restrict radii, int n) {
  int round = 1;
  int changed = 1;
  while (changed > 0) {
    changed = 0;
    for (int v = 0; v < n; v = v + 1) {
      int edge_start = nodes[v];
      int edge_end = nodes[v + 1];
      int m = 0;
      for (int e = edge_start; e < edge_end; e = e + 1) {
        int ngh = edges[e];
        int mv = visited[ngh];
        m = m | mv;
      }
      int m0 = visited[v];
      int mnew = m | m0;
      next_visited[v] = mnew;
      if (mnew != m0) {
        radii[v] = round;
        changed = changed + 1;
      }
    }
    swap(visited, next_visited);
    round = round + 1;
  }
}
`

// radiiSample picks the K source vertices deterministically.
func radiiSample(n int, k int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, 0, k)
	seen := map[int]bool{}
	for len(out) < k && len(out) < n {
		v := rng.Intn(n)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// RadiiRef computes the reference radii estimates.
func RadiiRef(g *graph.CSR, seed int64) []int64 {
	n := g.NumVertices()
	visited := make([]int64, n)
	next := make([]int64, n)
	radii := make([]int64, n)
	for i, v := range radiiSample(n, 64, seed) {
		visited[v] |= 1 << uint(i)
		radii[v] = 0
	}
	round := int64(1)
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			m := int64(0)
			for _, ngh := range g.Neighbors(v) {
				m |= visited[ngh]
			}
			mnew := m | visited[v]
			next[v] = mnew
			if mnew != visited[v] {
				radii[v] = round
				changed = true
			}
		}
		visited, next = next, visited
		round++
	}
	return radii
}

// RadiiBindings builds bindings for a graph.
func RadiiBindings(g *graph.CSR, seed int64) pipeline.Bindings {
	n := g.NumVertices()
	visited := make([]int64, n)
	for i, v := range radiiSample(n, 64, seed) {
		visited[v] |= 1 << uint(i)
	}
	return pipeline.Bindings{
		Ints: map[string][]int64{
			"nodes":        g.Nodes,
			"edges":        g.Edges,
			"visited":      visited,
			"next_visited": make([]int64, n),
			"radii":        make([]int64, n),
		},
		Scalars: map[string]int64{"n": int64(n)},
	}
}

// RadiiVerify checks radii against the reference.
func RadiiVerify(inst *pipeline.Instance, g *graph.CSR, seed int64) error {
	want := RadiiRef(g, seed)
	got := inst.Arrays["radii"].Ints()
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("radii: radii[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	return nil
}
