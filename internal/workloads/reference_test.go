package workloads_test

import (
	"testing"
	"testing/quick"

	"phloem/internal/graph"
	"phloem/internal/workloads"
)

// TestBFSRefAgainstDijkstraLike cross-checks the BFS reference with an
// independent relaxation-to-fixpoint formulation.
func TestBFSRefAgainstDijkstraLike(t *testing.T) {
	f := func(seed uint8) bool {
		g := graph.Uniform("u", 60, 3, int64(seed))
		want := workloads.BFSRef(g, 0)
		// Bellman-Ford style relaxation.
		n := g.NumVertices()
		dist := make([]int64, n)
		for i := range dist {
			dist[i] = workloads.INF
		}
		dist[0] = 0
		for changed := true; changed; {
			changed = false
			for v := 0; v < n; v++ {
				if dist[v] == workloads.INF {
					continue
				}
				for _, u := range g.Neighbors(v) {
					if dist[v]+1 < dist[u] {
						dist[u] = dist[v] + 1
						changed = true
					}
				}
			}
		}
		for i := range dist {
			if dist[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestCCRefPartitionsComponents checks the CC reference labels form valid
// connected components: same label iff connected.
func TestCCRefPartitionsComponents(t *testing.T) {
	f := func(seed uint8) bool {
		g := graph.Uniform("u", 50, 1.5, int64(seed)) // sparse: many components
		labels := workloads.CCRef(g)
		// Labels must be consistent across every edge.
		for v := 0; v < g.NumVertices(); v++ {
			for _, u := range g.Neighbors(v) {
				if labels[v] != labels[u] {
					return false
				}
			}
		}
		// The label must be the minimum vertex id in its component (so
		// every label points at a vertex with that label).
		for v := 0; v < g.NumVertices(); v++ {
			l := labels[v]
			if labels[l] != l || l > int64(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestRadiiRefMonotone checks radii estimates are bounded by the observed
// propagation round count and nonnegative.
func TestRadiiRefMonotone(t *testing.T) {
	g := graph.Grid("g", 10, 10, 3)
	radii := workloads.RadiiRef(g, 99)
	for v, r := range radii {
		if r < 0 {
			t.Fatalf("radii[%d] = %d", v, r)
		}
	}
}

// TestPRDRefMass checks PageRank-Delta conserves pushed mass: the total rank
// equals the initial mass plus all applied deltas (a loose sanity bound).
func TestPRDRefMass(t *testing.T) {
	g := graph.PowerLaw("p", 120, 3, 5)
	rank := workloads.PRDRef(g)
	sum := 0.0
	for _, r := range rank {
		sum += r
	}
	if sum <= 0.9 || sum > 6 {
		t.Errorf("total rank mass %v out of plausible range", sum)
	}
}
