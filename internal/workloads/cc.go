package workloads

import (
	"fmt"

	"phloem/internal/graph"
	"phloem/internal/pipeline"
)

// CCSource is serial Connected Components by label propagation: every vertex
// repeatedly adopts the smallest label in its neighborhood until a sweep
// changes nothing. The neighborhood minimum is accumulated before the
// read-modify-write of labels[v], which keeps all labels accesses in one
// stage (the race rule of Fig. 4).
const CCSource = `
#pragma phloem
void cc(int* restrict nodes, int* restrict edges, int* restrict labels, int n) {
  int changed = 1;
  while (changed > 0) {
    changed = 0;
    for (int v = 0; v < n; v = v + 1) {
      int edge_start = nodes[v];
      int edge_end = nodes[v + 1];
      int best = 1099511627776;
      for (int e = edge_start; e < edge_end; e = e + 1) {
        int ngh = edges[e];
        int ln = labels[ngh];
        if (ln < best) {
          best = ln;
        }
      }
      int lv = labels[v];
      if (best < lv) {
        labels[v] = best;
        changed = changed + 1;
      }
    }
  }
}
`

// CCRef computes reference labels (the minimum vertex id of each component).
func CCRef(g *graph.CSR) []int64 {
	n := g.NumVertices()
	labels := make([]int64, n)
	for i := range labels {
		labels[i] = int64(i)
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < n; v++ {
			best := labels[v]
			for _, ngh := range g.Neighbors(v) {
				if labels[ngh] < best {
					best = labels[ngh]
				}
			}
			if best < labels[v] {
				labels[v] = best
				changed = true
			}
		}
	}
	return labels
}

// CCBindings builds bindings for a graph.
func CCBindings(g *graph.CSR) pipeline.Bindings {
	n := g.NumVertices()
	labels := make([]int64, n)
	for i := range labels {
		labels[i] = int64(i)
	}
	return pipeline.Bindings{
		Ints: map[string][]int64{
			"nodes":  g.Nodes,
			"edges":  g.Edges,
			"labels": labels,
		},
		Scalars: map[string]int64{"n": int64(n)},
	}
}

// CCVerify checks labels against the reference.
func CCVerify(inst *pipeline.Instance, g *graph.CSR) error {
	want := CCRef(g)
	got := inst.Arrays["labels"].Ints()
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("cc: labels[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	return nil
}
