package workloads_test

import (
	"testing"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/passes"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

// TestPipelinesDrainAllQueues checks the protocol invariant behind
// deadlock-freedom: every generated pipeline, under every pass
// configuration, leaves every queue empty when the program ends. Leftover
// tokens mean an over-send, which bounded timing queues would eventually
// deadlock on.
func TestPipelinesDrainAllQueues(t *testing.T) {
	configs := []passes.Options{
		{},
		{Recompute: true},
		{Recompute: true, CtrlValues: true},
		{Recompute: true, CtrlValues: true, InterstageDCE: true, Handlers: true},
		passes.Default(),
	}
	for _, bench := range workloads.Benchmarks(workloads.ScaleTest) {
		bench := bench
		t.Run(bench.Name, func(t *testing.T) {
			serial, err := workloads.CompileSerial(bench.SerialSource)
			if err != nil {
				t.Fatal(err)
			}
			in := bench.Train[0]
			for _, pc := range configs {
				opt := core.DefaultOptions()
				opt.EnableAblation = true
				opt.Passes = pc
				res, err := core.Compile(serial, opt)
				if err != nil {
					t.Fatalf("[%s]: %v", pc, err)
				}
				inst, err := pipeline.Instantiate(res.Pipeline, arch.DefaultConfig(1), in.Bind())
				if err != nil {
					t.Fatalf("[%s]: %v", pc, err)
				}
				ts, err := inst.Machine.RunFunctional()
				if err != nil {
					t.Fatalf("[%s]: %v", pc, err)
				}
				for q, n := range ts.Leftover {
					if n != 0 {
						t.Errorf("[%s] queue %d (%s): %d leftover tokens",
							pc, q, inst.Machine.Queues[q].Name, n)
					}
				}
				if err := in.Verify(inst); err != nil {
					t.Errorf("[%s]: %v", pc, err)
				}
			}
		})
	}
}

// TestDeterministicSimulation checks that repeated runs produce identical
// cycle counts (the simulator is single-threaded and seed-driven).
func TestDeterministicSimulation(t *testing.T) {
	bench, err := workloads.ByName(workloads.ScaleTest, "BFS")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := workloads.CompileSerial(bench.SerialSource)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compile(serial, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	in := bench.Train[1]
	var first uint64
	for i := 0; i < 3; i++ {
		inst, err := pipeline.Instantiate(res.Pipeline, arch.DefaultConfig(1), in.Bind())
		if err != nil {
			t.Fatal(err)
		}
		st, err := inst.Run()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = st.Cycles
		} else if st.Cycles != first {
			t.Fatalf("run %d: %d cycles, first run %d", i, st.Cycles, first)
		}
	}
}
