package workloads

import (
	"fmt"

	"phloem/internal/graph"
	"phloem/internal/matrix"
	"phloem/internal/pipeline"
)

// Input is one named benchmark input with bindings and verification.
type Input struct {
	Name   string
	Domain string
	// Bind builds bindings for the serial/Phloem/manual variants.
	Bind func() pipeline.Bindings
	// BindDP builds bindings for the data-parallel variant with T threads.
	BindDP func(threads int) pipeline.Bindings
	// Verify checks an executed instance's results.
	Verify func(*pipeline.Instance) error
}

// Benchmark bundles one evaluated application (Sec. VI-B).
type Benchmark struct {
	Name         string
	SerialSource string
	DPSource     string
	// Manual builds the hand-optimized pipeline (nil: expert-selected
	// points via search; see DESIGN.md's substitution notes).
	Manual func() (*pipeline.Pipeline, error)
	Train  []*Input
	Test   []*Input
}

// Scale sizes the input suite: the test/CI scale keeps cycle counts small;
// the full scale makes working sets DRAM-resident like the paper's inputs.
type Scale int

const (
	ScaleTest Scale = iota
	ScaleFull
)

func bfsInput(name, domain string, g *graph.CSR) *Input {
	return &Input{
		Name: name, Domain: domain,
		Bind: func() pipeline.Bindings { return BFSBindings(g, 0) },
		BindDP: func(t int) pipeline.Bindings {
			b := BFSBindings(g, 0)
			b.Ints["changed"] = make([]int64, t)
			delete(b.Ints, "cur_fringe")
			delete(b.Ints, "next_fringe")
			return dpScalars(b, t)
		},
		Verify: func(inst *pipeline.Instance) error { return BFSVerify(inst, g, 0) },
	}
}

func ccInput(name, domain string, g *graph.CSR) *Input {
	return &Input{
		Name: name, Domain: domain,
		Bind: func() pipeline.Bindings { return CCBindings(g) },
		BindDP: func(t int) pipeline.Bindings {
			b := CCBindings(g)
			b.Ints["changed"] = make([]int64, t)
			return dpScalars(b, t)
		},
		Verify: func(inst *pipeline.Instance) error { return CCVerify(inst, g) },
	}
}

func radiiInput(name, domain string, g *graph.CSR, seed int64) *Input {
	return &Input{
		Name: name, Domain: domain,
		Bind: func() pipeline.Bindings { return RadiiBindings(g, seed) },
		BindDP: func(t int) pipeline.Bindings {
			b := RadiiBindings(g, seed)
			b.Ints["changed"] = make([]int64, t)
			return dpScalars(b, t)
		},
		Verify: func(inst *pipeline.Instance) error { return RadiiVerify(inst, g, seed) },
	}
}

func prdInput(name, domain string, g *graph.CSR) *Input {
	return &Input{
		Name: name, Domain: domain,
		Bind: func() pipeline.Bindings { return PRDBindings(g) },
		BindDP: func(t int) pipeline.Bindings {
			b := PRDBindings(g)
			b.Floats["next_delta"] = make([]float64, t*g.NumVertices())
			return dpScalars(b, t)
		},
		Verify: func(inst *pipeline.Instance) error { return PRDVerify(inst, g) },
	}
}

func spmmInput(name, domain string, a *matrix.CSR) *Input {
	bt := a.Transpose(a.Name + "T")
	return &Input{
		Name: name, Domain: domain,
		Bind: func() pipeline.Bindings { return SpMMBindings(a, bt) },
		BindDP: func(t int) pipeline.Bindings {
			return dpScalars(SpMMBindings(a, bt), t)
		},
		Verify: func(inst *pipeline.Instance) error { return SpMMVerify(inst, a, bt) },
	}
}

// graphSuite builds the per-benchmark graph inputs at the requested scale,
// mirroring Table IV's domains.
func graphSuite(scale Scale, mk func(name, domain string, g *graph.CSR) *Input) (train, test []*Input) {
	f := 1
	if scale == ScaleFull {
		f = 4
	}
	train = []*Input{
		mk("internet", "Training internet graph", graph.PowerLaw("internet", 800*f, 2, 11)),
		mk("road-ny", "Training road network", graph.Grid("road-ny", 30*f, 30*f, 12)),
	}
	test = []*Input{
		mk("coauthors", "Human collaboration", graph.PowerLaw("coauthors", 1500*f, 3, 21)),
		mk("hugetrace", "Dynamic simulation", graph.Trace("hugetrace", 60*f, 24, 22)),
		mk("freescale", "Circuit simulation", graph.Uniform("freescale", 2000*f, 2.8, 23)),
		mk("skitter", "Internet graph", graph.PowerLaw("skitter", 1200*f, 6, 24)),
		mk("road-usa", "Road network", graph.Grid("road-usa", 50*f, 50*f, 25)),
	}
	return train, test
}

func radiiSuite(scale Scale) (train, test []*Input) {
	return graphSuite(scale, func(name, domain string, g *graph.CSR) *Input {
		return radiiInput(name, domain, g, 99)
	})
}

// spmmSuite mirrors Table V's SpMM rows.
func spmmSuite(scale Scale) (train, test []*Input) {
	f := 1
	if scale == ScaleFull {
		f = 2
	}
	train = []*Input{
		spmmInput("enron", "Training graph as matrix 1", matrix.PowerLawRows("enron", 150*f, 3, 31)),
		spmmInput("wiki-vote", "Training graph as matrix 2", matrix.PowerLawRows("wiki-vote", 120*f, 4, 32)),
	}
	test = []*Input{
		spmmInput("p2p-gnutella", "File sharing", matrix.Scattered("p2p-gnutella", 300*f, 1, 41)),
		spmmInput("amazon", "Graph as matrix", matrix.Scattered("amazon", 280*f, 4, 42)),
		spmmInput("cage", "Gel electrophoresis", matrix.Banded("cage", 240*f, 8, 40, 43)),
		spmmInput("2cubes", "Electromagnetics", matrix.Banded("2cubes", 220*f, 8, 200, 44)),
		spmmInput("rma10", "Fluid dynamics", matrix.Banded("rma10", 160*f, 25, 60, 45)),
	}
	return train, test
}

// Benchmarks returns the five evaluated applications at the given scale.
func Benchmarks(scale Scale) []*Benchmark {
	bfsTrain, bfsTest := graphSuite(scale, bfsInput)
	ccTrain, ccTest := graphSuite(scale, ccInput)
	radTrain, radTest := radiiSuite(scale)
	prdTrain, prdTest := graphSuite(scale, prdInput)
	spTrain, spTest := spmmSuite(scale)
	return []*Benchmark{
		{Name: "BFS", SerialSource: BFSSource, DPSource: BFSDPSource,
			Manual: ManualBFS, Train: bfsTrain, Test: bfsTest},
		{Name: "CC", SerialSource: CCSource, DPSource: CCDPSource,
			Train: ccTrain, Test: ccTest},
		{Name: "PRD", SerialSource: PRDSource, DPSource: PRDDPSource,
			Train: prdTrain, Test: prdTest},
		{Name: "Radii", SerialSource: RadiiSource, DPSource: RadiiDPSource,
			Train: radTrain, Test: radTest},
		{Name: "SpMM", SerialSource: SpMMSource, DPSource: SpMMDPSource,
			Manual: ManualSpMM, Train: spTrain, Test: spTest},
	}
}

// ByName finds a benchmark in the suite.
func ByName(scale Scale, name string) (*Benchmark, error) {
	for _, b := range Benchmarks(scale) {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
}
