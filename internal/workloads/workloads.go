// Package workloads contains the evaluated benchmarks (Sec. VI-B): for each
// of BFS, Connected Components, PageRank-Delta, Radii, and SpMM it provides
// the serial C-subset source that Phloem compiles, a competitive
// data-parallel variant, a hand-optimized ("manually pipelined") variant
// encoding the insights of the Pipette paper, and a plain Go reference
// implementation used to verify functional correctness of every variant.
package workloads

import (
	"fmt"

	"phloem/internal/ir"
	"phloem/internal/lower"
	"phloem/internal/source"
)

// INF is the "infinite distance" constant used by the graph kernels
// (INT_MAX in the paper's listings; a large sentinel here).
const INF = int64(1) << 40

// CompileSerial parses, checks, and lowers a kernel source to IR.
func CompileSerial(src string) (*ir.Prog, error) {
	fn, err := source.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	if err := source.Check(fn); err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	p, err := lower.FromAST(fn)
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	return p, nil
}

// MustCompile is CompileSerial that panics on error (static sources only).
func MustCompile(src string) *ir.Prog {
	p, err := CompileSerial(src)
	if err != nil {
		panic(err)
	}
	return p
}
