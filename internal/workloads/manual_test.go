package workloads_test

import (
	"testing"

	"phloem/internal/arch"
	"phloem/internal/graph"
	"phloem/internal/matrix"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

func TestManualBFSStructure(t *testing.T) {
	pl, err := workloads.ManualBFS()
	if err != nil {
		t.Fatal(err)
	}
	// The hand pipeline merges the driver and the vertex doubler: 2 threads
	// + 3 chained RAs.
	if pl.NumStages() != 2 || len(pl.RAs) != 3 {
		t.Errorf("manual BFS: %d stages + %d RAs, want 2 + 3", pl.NumStages(), len(pl.RAs))
	}
	// The chain: nodes indirect output feeds the edges scan input.
	if pl.RAs[1].OutQ != pl.RAs[2].InQ {
		t.Error("manual BFS RAs are not chained")
	}
}

func TestManualBFSOnVariedGraphs(t *testing.T) {
	pl, err := workloads.ManualBFS()
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*graph.CSR{
		graph.Grid("grid", 20, 20, 2),
		graph.PowerLaw("pl", 400, 3, 3),
		graph.Trace("tr", 12, 10, 4),
	} {
		inst, err := pipeline.Instantiate(pl, arch.DefaultConfig(1), workloads.BFSBindings(g, 0))
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if _, err := inst.Run(); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if err := workloads.BFSVerify(inst, g, 0); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestManualSpMMSkipTrickCorrect(t *testing.T) {
	pl, err := workloads.ManualSpMM()
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumStages() != 2 || len(pl.RAs) != 4 {
		t.Errorf("manual SpMM: %d stages + %d RAs, want 2 + 4", pl.NumStages(), len(pl.RAs))
	}
	// Disjoint sparsity patterns exercise the skip paths hard: A only has
	// even columns, B^T only odd ones, so every merge ends in a skip run.
	a := matrix.Banded("a", 60, 6, 20, 7)
	bt := matrix.Scattered("bt", 60, 3, 8)
	inst, err := pipeline.Instantiate(pl, arch.DefaultConfig(1), workloads.SpMMBindings(a, bt))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Run(); err != nil {
		t.Fatal(err)
	}
	if err := workloads.SpMMVerify(inst, a, bt); err != nil {
		t.Error(err)
	}
}

func TestManualSpMMFewerInstructionsThanPhloem(t *testing.T) {
	// The skip trick's whole point: fewer dynamic instructions on the merge
	// by skipping ineffectual comparisons (Sec. VII).
	man, err := workloads.ManualSpMM()
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.PowerLawRows("a", 120, 3, 9)
	bt := a.Transpose("bt")
	inst, err := pipeline.Instantiate(man, arch.DefaultConfig(1), workloads.SpMMBindings(a, bt))
	if err != nil {
		t.Fatal(err)
	}
	st, err := inst.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := workloads.SpMMVerify(inst, a, bt); err != nil {
		t.Fatal(err)
	}
	serial, err := workloads.CompileSerial(workloads.SpMMSource)
	if err != nil {
		t.Fatal(err)
	}
	sInst, err := pipeline.Instantiate(pipeline.NewSerial(serial), arch.DefaultConfig(1),
		workloads.SpMMBindings(a, bt))
	if err != nil {
		t.Fatal(err)
	}
	sSt, err := sInst.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles >= sSt.Cycles*3/2 {
		t.Errorf("manual SpMM should be competitive with serial: %d vs %d cycles",
			st.Cycles, sSt.Cycles)
	}
}
