package workloads

import (
	"fmt"
	"math"

	"phloem/internal/graph"
	"phloem/internal/pipeline"
)

// PRDSource is PageRank-Delta: instead of recomputing every rank each
// iteration, only vertices whose rank delta exceeds a threshold push their
// contribution to their neighbors. The kernel runs a fixed number of
// iterations of two phases — push deltas, then apply them — which exercises
// Phloem's program-phase support (Sec. IV-A): the outer counted loop is
// replicated into every stage and the phases synchronize with barriers.
// The push loop uses the guard-limit idiom (lim stays at edge_start when the
// delta is below threshold), keeping the edge traversal on the loop spine
// where it can be decoupled.
const PRDSource = `
#pragma phloem
void prd(int* restrict nodes, int* restrict edges, float* restrict delta,
         float* restrict next_delta, float* restrict rank,
         int n, int niter, float threshold, float alpha) {
  for (int it = 0; it < niter; it = it + 1) {
    for (int v = 0; v < n; v = v + 1) {
      float d = delta[v];
      int edge_start = nodes[v];
      int edge_end = nodes[v + 1];
      int deg = edge_end - edge_start;
      float ad = fabs(d);
      int lim = edge_start;
      if (ad > threshold) {
        lim = edge_end;
      }
      float w = alpha * d / (float)max(deg, 1);
      for (int e = edge_start; e < lim; e = e + 1) {
        int ngh = edges[e];
        next_delta[ngh] = next_delta[ngh] + w;
      }
    }
    for (int u = 0; u < n; u = u + 1) {
      float nd = next_delta[u];
      rank[u] = rank[u] + nd;
      delta[u] = nd;
      next_delta[u] = 0.0;
    }
  }
}
`

// PRD parameters used across variants.
const (
	PRDIters     = 5
	PRDThreshold = 1e-4
	PRDAlpha     = 0.85
)

// PRDRef computes reference ranks.
func PRDRef(g *graph.CSR) []float64 {
	n := g.NumVertices()
	delta := make([]float64, n)
	next := make([]float64, n)
	rank := make([]float64, n)
	for i := range delta {
		delta[i] = 1.0 / float64(n)
		rank[i] = 1.0 / float64(n)
	}
	for it := 0; it < PRDIters; it++ {
		for v := 0; v < n; v++ {
			d := delta[v]
			if math.Abs(d) > PRDThreshold {
				deg := len(g.Neighbors(v))
				if deg > 0 {
					w := PRDAlpha * d / float64(deg)
					for _, ngh := range g.Neighbors(v) {
						next[ngh] += w
					}
				}
			}
		}
		for u := 0; u < n; u++ {
			rank[u] += next[u]
			delta[u] = next[u]
			next[u] = 0
		}
	}
	return rank
}

// PRDBindings builds bindings for a graph.
func PRDBindings(g *graph.CSR) pipeline.Bindings {
	n := g.NumVertices()
	delta := make([]float64, n)
	rank := make([]float64, n)
	for i := range delta {
		delta[i] = 1.0 / float64(n)
		rank[i] = 1.0 / float64(n)
	}
	return pipeline.Bindings{
		Ints: map[string][]int64{
			"nodes": g.Nodes,
			"edges": g.Edges,
		},
		Floats: map[string][]float64{
			"delta":      delta,
			"next_delta": make([]float64, n),
			"rank":       rank,
		},
		Scalars: map[string]int64{"n": int64(n), "niter": PRDIters},
		FloatScalars: map[string]float64{
			"threshold": PRDThreshold,
			"alpha":     PRDAlpha,
		},
	}
}

// PRDVerify checks ranks against the reference within a tolerance (parallel
// variants may reorder float additions).
func PRDVerify(inst *pipeline.Instance, g *graph.CSR) error {
	want := PRDRef(g)
	got := inst.Arrays["rank"].Floats()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			return fmt.Errorf("prd: rank[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	return nil
}
