package workloads

import (
	"testing"

	"phloem/internal/arch"
	"phloem/internal/graph"
	"phloem/internal/pipeline"
)

func TestBFSSerialMatchesReference(t *testing.T) {
	p, err := CompileSerial(BFSSource)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, in := range []*graph.CSR{
		graph.Grid("grid", 12, 12, 1),
		graph.PowerLaw("pl", 300, 3, 2),
		graph.Trace("trace", 10, 8, 3),
	} {
		pl := pipeline.NewSerial(p)
		inst, err := pipeline.Instantiate(pl, arch.DefaultConfig(1), BFSBindings(in, 0))
		if err != nil {
			t.Fatalf("%s: instantiate: %v", in.Name, err)
		}
		st, err := inst.Run()
		if err != nil {
			t.Fatalf("%s: run: %v", in.Name, err)
		}
		if err := BFSVerify(inst, in, 0); err != nil {
			t.Errorf("%s: %v", in.Name, err)
		}
		t.Logf("%s: %d cycles, %d uops, IPC %.2f", in.Name, st.Cycles, st.Issued, st.IPC())
	}
}
