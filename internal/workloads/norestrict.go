package workloads

import (
	"fmt"
	"math"

	"phloem/internal/matrix"
	"phloem/internal/pipeline"
)

// This file holds kernel variants written WITHOUT restrict qualifiers to
// exercise the memory-effects analysis (internal/effects): each compiles
// because the analysis proves the accesses safe, not because the programmer
// asserted it. BFSAliasedSource is the negative case the analysis must
// reject.

// PRDApplySource is the apply phase of PageRank-Delta with every float
// array unqualified. All three arrays may alias under the points-to model
// (they share the float world location), but every access is at the same
// affine index u, so each pair's verdict is benign: an overlap can only hit
// the same element within one iteration, which program order handles. The
// race rule keeps such accesses in one stage.
const PRDApplySource = `
#pragma phloem
void prd_apply(float* rank, float* delta, float* next_delta, int n) {
  for (int u = 0; u < n; u = u + 1) {
    float nd = next_delta[u];
    rank[u] = rank[u] + nd;
    delta[u] = nd;
    next_delta[u] = 0.0;
  }
}
`

// PRDApplyRef is the plain Go reference for one apply sweep.
func PRDApplyRef(rank, delta, nextDelta []float64) {
	for u := range rank {
		nd := nextDelta[u]
		rank[u] += nd
		delta[u] = nd
		nextDelta[u] = 0
	}
}

// PRDApplyBindings seeds deterministic pseudo-random deltas.
func PRDApplyBindings(n int, seed int64) pipeline.Bindings {
	rank := make([]float64, n)
	delta := make([]float64, n)
	next := make([]float64, n)
	s := uint64(seed)*2862933555777941757 + 3037000493
	for i := 0; i < n; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		rank[i] = float64(s%1000) / 1000
		s = s*6364136223846793005 + 1442695040888963407
		next[i] = float64(s%1000)/500 - 1
	}
	return pipeline.Bindings{
		Floats:  map[string][]float64{"rank": rank, "delta": delta, "next_delta": next},
		Scalars: map[string]int64{"n": int64(n)},
	}
}

// PRDApplyVerify checks an executed instance against the Go reference run
// on a copy of the same bindings.
func PRDApplyVerify(inst *pipeline.Instance, b pipeline.Bindings) error {
	rank := append([]float64(nil), b.Floats["rank"]...)
	delta := append([]float64(nil), b.Floats["delta"]...)
	next := append([]float64(nil), b.Floats["next_delta"]...)
	PRDApplyRef(rank, delta, next)
	for name, want := range map[string][]float64{"rank": rank, "delta": delta, "next_delta": next} {
		got := inst.Arrays[name].Floats()
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				return fmt.Errorf("prd_apply: %s[%d] = %g, want %g", name, i, got[i], want[i])
			}
		}
	}
	return nil
}

// SpMVNoRestrictSource is CSR sparse matrix-vector multiplication with the
// two index arrays unqualified: rows and cols may alias each other, but both
// are read-only in the kernel, so the verdict is no-conflict and decoupling
// stays legal. The float arrays keep restrict (they are written).
const SpMVNoRestrictSource = `
#pragma phloem
void spmv(int* rows, int* cols, float* restrict vals,
          float* restrict x, float* restrict y, int n) {
  for (int i = 0; i < n; i = i + 1) {
    float acc = 0.0;
    int kEnd = rows[i + 1];
    for (int k = rows[i]; k < kEnd; k = k + 1) {
      int c = cols[k];
      acc = acc + vals[k] * x[c];
    }
    y[i] = acc;
  }
}
`

// SpMVRef computes the reference product y = A * x.
func SpMVRef(a *matrix.CSR, x []float64) []float64 {
	y := make([]float64, a.N)
	for i := 0; i < a.N; i++ {
		for k := a.Rows[i]; k < a.Rows[i+1]; k++ {
			y[i] += a.Vals[k] * x[a.Cols[k]]
		}
	}
	return y
}

// SpMVBindings binds a CSR matrix and a deterministic dense vector.
func SpMVBindings(a *matrix.CSR) pipeline.Bindings {
	x := make([]float64, a.N)
	for i := range x {
		x[i] = float64((i*37+11)%100) / 100
	}
	return pipeline.Bindings{
		Ints:    map[string][]int64{"rows": a.Rows, "cols": a.Cols},
		Floats:  map[string][]float64{"vals": a.Vals, "x": x, "y": make([]float64, a.N)},
		Scalars: map[string]int64{"n": int64(a.N)},
	}
}

// SpMVVerify checks y against the Go reference.
func SpMVVerify(inst *pipeline.Instance, a *matrix.CSR, b pipeline.Bindings) error {
	want := SpMVRef(a, b.Floats["x"])
	got := inst.Arrays["y"].Floats()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			return fmt.Errorf("spmv: y[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	return nil
}

// BFSAliasedSource drops restrict from distances and edges in the BFS
// kernel: the store distances[ngh] goes through a loaded index, so no
// verdict better than may-alias is provable against the edges reads and the
// effects analysis must reject the kernel with a positioned E0 error.
const BFSAliasedSource = `
#pragma phloem
void bfs(int* restrict nodes, int* edges, int* distances,
         int* restrict cur_fringe, int* restrict next_fringe,
         int root, int n) {
  int cur_size = 1;
  int next_size = 0;
  int cur_dist = 1;
  while (cur_size > 0) {
    for (int i = 0; i < cur_size; i = i + 1) {
      int v = cur_fringe[i];
      int edge_start = nodes[v];
      int edge_end = nodes[v + 1];
      for (int e = edge_start; e < edge_end; e = e + 1) {
        int ngh = edges[e];
        int old_dist = distances[ngh];
        if (cur_dist < old_dist) {
          distances[ngh] = cur_dist;
          next_fringe[next_size] = ngh;
          next_size = next_size + 1;
        }
      }
    }
    swap(cur_fringe, next_fringe);
    cur_size = next_size;
    next_size = 0;
    cur_dist = cur_dist + 1;
  }
}
`
