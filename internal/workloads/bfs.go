package workloads

import (
	"fmt"

	"phloem/internal/graph"
	"phloem/internal/pipeline"
)

// BFSSource is the serial breadth-first search kernel of Fig. 2 (left),
// written in the C subset. The host initializes distances (INF everywhere,
// 0 at the root) and seeds cur_fringe with the root before the kernel runs.
const BFSSource = `
#pragma phloem
void bfs(int* restrict nodes, int* restrict edges, int* restrict distances,
         int* restrict cur_fringe, int* restrict next_fringe,
         int root, int n) {
  int cur_size = 1;
  int next_size = 0;
  int cur_dist = 1;
  while (cur_size > 0) {
    for (int i = 0; i < cur_size; i = i + 1) {
      int v = cur_fringe[i];
      int edge_start = nodes[v];
      int edge_end = nodes[v + 1];
      for (int e = edge_start; e < edge_end; e = e + 1) {
        int ngh = edges[e];
        int old_dist = distances[ngh];
        if (cur_dist < old_dist) {
          distances[ngh] = cur_dist;
          next_fringe[next_size] = ngh;
          next_size = next_size + 1;
        }
      }
    }
    swap(cur_fringe, next_fringe);
    cur_size = next_size;
    next_size = 0;
    cur_dist = cur_dist + 1;
  }
}
`

// BFSRef computes reference distances with a plain Go BFS.
func BFSRef(g *graph.CSR, root int64) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = INF
	}
	dist[root] = 0
	fringe := []int64{root}
	d := int64(1)
	for len(fringe) > 0 {
		var next []int64
		for _, v := range fringe {
			for _, ngh := range g.Neighbors(int(v)) {
				if d < dist[ngh] {
					dist[ngh] = d
					next = append(next, ngh)
				}
			}
		}
		fringe = next
		d++
	}
	return dist
}

// BFSBindings builds pipeline bindings for a graph and root.
func BFSBindings(g *graph.CSR, root int64) pipeline.Bindings {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = INF
	}
	dist[root] = 0
	cur := make([]int64, n+1)
	cur[0] = root
	return pipeline.Bindings{
		Ints: map[string][]int64{
			"nodes":       g.Nodes,
			"edges":       g.Edges,
			"distances":   dist,
			"cur_fringe":  cur,
			"next_fringe": make([]int64, n+1),
		},
		Scalars: map[string]int64{
			"root": root,
			"n":    int64(n),
		},
	}
}

// BFSVerify checks an instance's distances against the Go reference.
func BFSVerify(inst *pipeline.Instance, g *graph.CSR, root int64) error {
	want := BFSRef(g, root)
	got := inst.Arrays["distances"].Ints()
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("bfs: distances[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	return nil
}
