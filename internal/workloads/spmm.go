package workloads

import (
	"fmt"
	"math"

	"phloem/internal/matrix"
	"phloem/internal/pipeline"
)

// SpMMSource is inner-product (output-stationary) sparse matrix-matrix
// multiplication: each output element is the dot product of a row of A and a
// column of B (stored as a row of B^T), computed by a merge-intersection of
// the two sorted coordinate lists. The data-dependent merge loop is the
// pattern the paper's Sec. VII calls out: its bespoke manual optimization
// (skipping the rest of a run after a control value) is application insight
// unavailable to Phloem, making SpMM the evaluation's negative result.
const SpMMSource = `
#pragma phloem
void spmm(int* restrict arows, int* restrict acols, float* restrict avals,
          int* restrict btrows, int* restrict btcols, float* restrict btvals,
          float* restrict out, int n) {
  for (int i = 0; i < n; i = i + 1) {
    int ka0 = arows[i];
    int kaEnd = arows[i + 1];
    for (int j = 0; j < n; j = j + 1) {
      int kb = btrows[j];
      int kbEnd = btrows[j + 1];
      int ka = ka0;
      float acc = 0.0;
      while (ka < kaEnd && kb < kbEnd) {
        int ca = acols[ka];
        int cb = btcols[kb];
        if (ca == cb) {
          float pa = avals[ka];
          float pb = btvals[kb];
          acc = acc + pa * pb;
          ka = ka + 1;
          kb = kb + 1;
        } else {
          if (ca < cb) {
            ka = ka + 1;
          } else {
            kb = kb + 1;
          }
        }
      }
      if (acc != 0.0) {
        out[i * n + j] = acc;
      }
    }
  }
}
`

// SpMMRef computes the dense reference product C = A * B.
func SpMMRef(a, bt *matrix.CSR) []float64 {
	n := a.N
	out := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			ka, kaEnd := a.Rows[i], a.Rows[i+1]
			kb, kbEnd := bt.Rows[j], bt.Rows[j+1]
			acc := 0.0
			for ka < kaEnd && kb < kbEnd {
				ca, cb := a.Cols[ka], bt.Cols[kb]
				switch {
				case ca == cb:
					acc += a.Vals[ka] * bt.Vals[kb]
					ka++
					kb++
				case ca < cb:
					ka++
				default:
					kb++
				}
			}
			if acc != 0 {
				out[i*n+j] = acc
			}
		}
	}
	return out
}

// SpMMBindings builds bindings for A * B with B^T given in CSR form.
func SpMMBindings(a, bt *matrix.CSR) pipeline.Bindings {
	n := a.N
	return pipeline.Bindings{
		Ints: map[string][]int64{
			"arows":  a.Rows,
			"acols":  a.Cols,
			"btrows": bt.Rows,
			"btcols": bt.Cols,
		},
		Floats: map[string][]float64{
			"avals":  a.Vals,
			"btvals": bt.Vals,
			"out":    make([]float64, n*n),
		},
		Scalars: map[string]int64{"n": int64(n)},
	}
}

// SpMMVerify checks the product against the reference.
func SpMMVerify(inst *pipeline.Instance, a, bt *matrix.CSR) error {
	want := SpMMRef(a, bt)
	got := inst.Arrays["out"].Floats()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			return fmt.Errorf("spmm: out[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	return nil
}
