package workloads

import (
	"errors"
	"strings"
	"testing"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/matrix"
	"phloem/internal/pipeline"
	"phloem/internal/source"
)

// TestPRDApplyNoRestrict compiles and simulates the unqualified apply
// kernel: every parameter pair is provable only as benign (same affine
// index), which must be enough to compile and compute correctly.
func TestPRDApplyNoRestrict(t *testing.T) {
	res, err := core.CompileSource(PRDApplySource, core.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if res.AliasStats.Benign == 0 {
		t.Errorf("expected benign pairs, got stats %s", res.AliasStats)
	}
	if res.AliasStats.MayAlias != 0 {
		t.Errorf("no pair should be may-alias: %s", res.AliasStats)
	}
	b := PRDApplyBindings(64, 7)
	inst, err := pipeline.Instantiate(res.Pipeline, arch.DefaultConfig(1), b)
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	if _, err := inst.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := PRDApplyVerify(inst, PRDApplyBindings(64, 7)); err != nil {
		t.Error(err)
	}
}

// TestSpMVNoRestrict compiles and simulates SpMV with unqualified index
// arrays: rows/cols are proven no-conflict (read-only), everything else
// disjoint, so the kernel still decouples into a real pipeline.
func TestSpMVNoRestrict(t *testing.T) {
	res, err := core.CompileSource(SpMVNoRestrictSource, core.DefaultOptions())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if res.AliasStats.NoConflict == 0 {
		t.Errorf("rows/cols should be a no-conflict pair: %s", res.AliasStats)
	}
	if res.AliasStats.MayAlias != 0 {
		t.Errorf("no pair should be may-alias: %s", res.AliasStats)
	}
	if len(res.Pipeline.Stages) < 2 {
		t.Errorf("expected a decoupled pipeline, got %d stage(s)", len(res.Pipeline.Stages))
	}
	for _, m := range []*matrix.CSR{
		matrix.Banded("banded", 48, 4, 6, 1),
		matrix.Scattered("scattered", 48, 5, 2),
	} {
		b := SpMVBindings(m)
		inst, err := pipeline.Instantiate(res.Pipeline, arch.DefaultConfig(1), b)
		if err != nil {
			t.Fatalf("%s: instantiate: %v", m.Name, err)
		}
		if _, err := inst.Run(); err != nil {
			t.Fatalf("%s: run: %v", m.Name, err)
		}
		if err := SpMVVerify(inst, m, b); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

// TestBFSAliasedRejected requires the deliberately aliased BFS variant to
// fail with a positioned E0 error pointing at the indirect store.
func TestBFSAliasedRejected(t *testing.T) {
	_, err := core.CompileSource(BFSAliasedSource, core.DefaultOptions())
	if err == nil {
		t.Fatal("aliased BFS compiled; the effects analysis must reject it")
	}
	var se *source.Error
	if !errors.As(err, &se) {
		t.Fatalf("expected a *source.Error, got %T: %v", err, err)
	}
	if se.Line != 18 {
		t.Errorf("E0 on line %d, want 18 (the distances[ngh] store): %v", se.Line, err)
	}
	if !strings.Contains(se.Msg, "[E0]") ||
		!strings.Contains(se.Msg, `"distances"`) || !strings.Contains(se.Msg, `"edges"`) {
		t.Errorf("error should name [E0] and both parameters: %v", err)
	}
}
