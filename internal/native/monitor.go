package native

import (
	"time"

	"phloem/internal/sim"
)

// startMonitor launches the supervisor goroutine: it maps Machine.Ctx and
// Machine.WallDeadline onto the simulator's sentinel errors and runs the
// no-progress watchdog. The native backend cannot detect most deadlocks
// instantly the way the functional engine's scheduler can (the exception
// is a dequeue from a queue whose producers have all retired, which fails
// immediately via channel closure), so it samples the shared progress
// counter: two consecutive stalled watchdog intervals with stages still
// outstanding declare a deadlock with a best-effort wait-for snapshot.
func (e *engine) startMonitor() chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ctxDone <-chan struct{}
		if e.m.Ctx != nil {
			ctxDone = e.m.Ctx.Done()
		}
		var wallC <-chan time.Time
		if !e.m.WallDeadline.IsZero() {
			t := time.NewTimer(time.Until(e.m.WallDeadline))
			defer t.Stop()
			wallC = t.C
		}
		tick := time.NewTicker(e.opt.WatchdogInterval)
		defer tick.Stop()
		last := e.progress.Load()
		stalls := 0
		for {
			select {
			case <-e.allDone:
				return
			case <-e.stop:
				return
			case <-ctxDone:
				e.fail(&sim.CancelledError{Phase: "native", Cause: e.m.Ctx.Err()})
				return
			case <-wallC:
				e.fail(&sim.WallBudgetError{Phase: "native"})
				return
			case <-tick.C:
				cur := e.progress.Load()
				if cur != last {
					last, stalls = cur, 0
					continue
				}
				stalls++
				if stalls >= 2 {
					e.fail(&sim.DeadlockError{Snapshot: e.snapshot(nil, 0)})
					return
				}
			}
		}
	}()
	return done
}

// snapshot captures a best-effort wait-for state from the published
// per-stage wait words and channel occupancies. blocked, when non-nil,
// is the stage that tripped a closed-queue dequeue on queue q; its wait
// word may not reflect the block yet, so it is reported explicitly.
func (e *engine) snapshot(blocked *stageExec, q int) *sim.WaitForSnapshot {
	s := &sim.WaitForSnapshot{Phase: "native"}
	queueWait := func(q int) *sim.QueueWait {
		return &sim.QueueWait{Q: q, Name: e.m.Queues[q].Name, Len: len(e.chans[q]), Cap: cap(e.chans[q])}
	}
	for _, x := range e.stages {
		word := x.wait.Load()
		kind, wq := word>>32, int(word&0xffffffff)
		if kind == wHalted {
			continue
		}
		w := sim.StageWait{
			Stage:  x.st.Prog.Name,
			Thread: x.st.Thread,
			PC:     -1,
			Total:  len(x.st.Prog.Instrs),
		}
		switch {
		case x == blocked:
			w.State = "deq-empty"
			w.Queue = queueWait(q)
		case kind == wDeq:
			w.State = "deq-empty"
			w.Queue = queueWait(wq)
		case kind == wEnq:
			w.State = "enq-full"
			w.Queue = queueWait(wq)
		case kind == wBarrier:
			w.State = "barrier"
		default:
			w.State = "other"
		}
		s.Stages = append(s.Stages, w)
	}
	for qi := range e.chans {
		s.Queues = append(s.Queues, *queueWait(qi))
	}
	return s
}
