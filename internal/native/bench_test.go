package native_test

// Allocation discipline for the native executor, mirroring the simulator's
// growDouble rule: steady-state per-run allocations are bounded by pipeline
// shape (goroutines, channels, executor frames), never by workload size —
// register files, peek stashes, and RA batches come from a sync.Pool, and
// values travel through channels by value. BenchmarkNative* measure it;
// TestNativeAllocRegression pins a ceiling so a per-message allocation
// sneaking into the hot path fails CI rather than slowly eroding the
// backend's reason to exist.

import (
	"testing"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/native"
	"phloem/internal/pipeline"
	"phloem/internal/workloads"
)

// benchInstance compiles family name at test scale (commopt on, so native
// channels carry pass-inferred capacities) and instantiates its largest
// test input. The returned instance is safe to re-run: every family's
// outputs are pure functions of its inputs, and stage register files are
// re-initialized per run.
func benchInstance(tb testing.TB, name string) (*pipeline.Instance, *workloads.Input) {
	tb.Helper()
	opt := core.DefaultOptions()
	opt.CommOpt = true
	for _, b := range workloads.Benchmarks(workloads.ScaleTest) {
		if b.Name != name {
			continue
		}
		prog, err := workloads.CompileSerial(b.SerialSource)
		if err != nil {
			tb.Fatal(err)
		}
		res, err := core.Compile(prog, opt)
		if err != nil {
			tb.Fatal(err)
		}
		in := b.Test[len(b.Test)-1]
		inst, err := pipeline.Instantiate(res.Pipeline, arch.DefaultConfig(1), in.Bind())
		if err != nil {
			tb.Fatal(err)
		}
		return inst, in
	}
	tb.Fatalf("no benchmark family %q", name)
	return nil, nil
}

func benchNative(b *testing.B, family string) {
	inst, _ := benchInstance(b, family)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := native.Run(inst.Machine, native.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNativeSpMM(b *testing.B) { benchNative(b, "SpMM") }
func BenchmarkNativeBFS(b *testing.B)  { benchNative(b, "BFS") }

// TestNativeAllocRegression pins the steady-state allocation ceiling.
// Measured on the seed host: ~60 allocs/op for the commopt SpMM pipeline
// (goroutine stacks, channels, executor frames — all O(stages+queues)).
// The ceiling leaves ~3x headroom for runtime variance; what it must catch
// is a per-message or per-element allocation, which would blow through it
// by orders of magnitude on these inputs (thousands of tokens per run).
func TestNativeAllocRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	if testing.Short() {
		t.Skip("benchmark-backed test")
	}
	inst, in := benchInstance(t, "SpMM")
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := native.Run(inst.Machine, native.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	const ceiling = 200
	if got := r.AllocsPerOp(); got > ceiling {
		t.Errorf("native run allocates %d objects/op, ceiling %d — a per-message allocation has crept into the hot path", got, ceiling)
	}
	if err := in.Verify(inst); err != nil {
		t.Errorf("benchmarked instance no longer verifies: %v", err)
	}
}
