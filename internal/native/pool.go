package native

import (
	"sync"

	"phloem/internal/sim"
)

// valBuf is a pooled value slice. Register files, peek stashes, and RA
// drain batches are recycled across runs so a caller that executes many
// pipelines (the autotuner, a serving loop) does not re-allocate them
// per run — the per-message path itself is allocation-free because
// sim.Value travels by value through the channels.
type valBuf struct{ s []sim.Value }

var valPool = sync.Pool{New: func() any { return new(valBuf) }}

// getBuf returns a zeroed value slice of length n, reusing pooled backing
// storage when large enough.
func getBuf(n int) *valBuf {
	b := valPool.Get().(*valBuf)
	if cap(b.s) < n {
		b.s = make([]sim.Value, n)
	}
	b.s = b.s[:n]
	clear(b.s)
	return b
}

func (b *valBuf) put() { valPool.Put(b) }
