package native_test

// FuzzNativeDiff feeds arbitrary source strings through the full compile
// flow and, whenever a pipeline builds, runs it on both the functional
// simulator and the native backend from synthesized bindings. The oracle:
// when both succeed the output memory must match bitwise and the executed
// instruction counts must be equal; when the functional run fails, the
// native run must fail in the same sentinel class (trap/deadlock/limit) —
// except that a functional trace-limit may surface natively as a deadlock,
// because a livelocked producer can block on a bounded channel before it
// reaches the instruction cap (the documented capacity divergence).
// Trap messages are compared only when a single stage exists; with
// concurrent stages the first trap to fire is scheduling-dependent.
//
// Runs as a plain unit test over the seed corpus in `go test`; explore with
//
//	go test ./internal/native -fuzz FuzzNativeDiff -fuzztime 30s

import (
	"errors"
	"testing"
	"time"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/ir"
	"phloem/internal/native"
	"phloem/internal/pipeline"
	"phloem/internal/sim"
)

// synthBindings builds deterministic in-bounds-biased bindings for any
// compiled pipeline: every array gets 32 elements, int contents stay in
// [0, 32) so indirect accesses usually land in bounds (out-of-bounds ones
// are fine too — both backends must then trap), and every scalar is 8 so
// loop bounds stay small.
func synthBindings(pl *pipeline.Pipeline) pipeline.Bindings {
	b := pipeline.Bindings{
		Ints:         map[string][]int64{},
		Floats:       map[string][]float64{},
		Scalars:      map[string]int64{},
		FloatScalars: map[string]float64{},
	}
	for _, slot := range pl.Prog.Slots {
		if slot.Kind == ir.KFloat {
			fs := make([]float64, 32)
			for i := range fs {
				fs[i] = float64(i)*0.5 - 3
			}
			b.Floats[slot.Name] = fs
		} else {
			is := make([]int64, 32)
			for i := range is {
				is[i] = int64((i*3 + 1) % 32)
			}
			b.Ints[slot.Name] = is
		}
	}
	for _, v := range pl.Prog.ScalarParams {
		info := pl.Prog.Vars[v]
		if info.Kind == ir.KFloat {
			b.FloatScalars[info.Name] = 1.5
		} else {
			b.Scalars[info.Name] = 8
		}
	}
	return b
}

func FuzzNativeDiff(f *testing.F) {
	seeds := []string{
		"",
		"void k() {}",
		"void k(int* restrict a, int n) { for (int i = 0; i < n; i = i + 1) { a[i] = i; } }",
		`#pragma phloem
void k(int* restrict a, int* restrict b, int n) {
  for (int i = 0; i < n; i = i + 1) {
    int j = a[i];
    if (j > 0) { b[j] = b[j] + 1; }
  }
}`,
		`#pragma phloem
void spmv(int* rows, int* cols, float* restrict vals,
          float* restrict x, float* restrict y, int n) {
  for (int i = 0; i < n; i = i + 1) {
    float acc = 0.0;
    int kEnd = rows[i + 1];
    for (int k = rows[i]; k < kEnd; k = k + 1) {
      int c = cols[k];
      acc = acc + vals[k] * x[c];
    }
    y[i] = acc;
  }
}`,
		`#pragma phloem
void fan(int* restrict a, int* restrict b, int* restrict c, int n) {
  for (int i = 0; i < n; i = i + 1) {
    int v = a[i];
    b[i] = v * 2;
    c[i] = v * 2;
  }
}`,
		`#pragma phloem
void phases(int* restrict a, int* restrict b, int n) {
  for (int i = 0; i < n; i = i + 1) { a[i] = a[i] + 1; }
  for (int i = 0; i < n; i = i + 1) { b[a[i]] = i; }
}`,
		`#pragma phloem
void div(int* restrict a, int* restrict b, int n) {
  for (int i = 0; i < n; i = i + 1) { b[i] = n / a[i]; }
}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	cfg := arch.DefaultConfig(1)
	f.Fuzz(func(t *testing.T, src string) {
		for _, commOpt := range []bool{false, true} {
			opt := core.DefaultOptions()
			opt.CommOpt = commOpt
			res, err := core.CompileSource(src, opt)
			if err != nil {
				// Rejections are the frontend's concern (FuzzParse).
				return
			}
			pl := res.Pipeline
			bind := synthBindings(pl)

			simInst, err := pipeline.Instantiate(pl, cfg, bind)
			if err != nil {
				t.Fatalf("instantiate(sim): %v\nsource:\n%s", err, src)
			}
			simInst.Machine.MaxTraceEntries = 1 << 20
			ts, simErr := simInst.Machine.RunFunctional()

			natInst, err := pipeline.Instantiate(pl, cfg, bind)
			if err != nil {
				t.Fatalf("instantiate(native): %v\nsource:\n%s", err, src)
			}
			natInst.Machine.MaxTraceEntries = 1 << 20
			st, natErr := native.Run(natInst.Machine,
				native.Options{WatchdogInterval: 25 * time.Millisecond})

			switch {
			case simErr == nil:
				if natErr != nil {
					t.Fatalf("functional succeeded, native failed: %v\nsource:\n%s", natErr, src)
				}
				if st.Instructions != ts.Instructions {
					t.Fatalf("instruction counts diverge: native %d, functional %d\nsource:\n%s",
						st.Instructions, ts.Instructions, src)
				}
				compareSpaces(t, "fuzz", simInst.Machine.Space, natInst.Machine.Space)
				if t.Failed() {
					t.Fatalf("memory diverged\nsource:\n%s", src)
				}
			case errors.Is(simErr, sim.ErrTrap):
				if !errors.Is(natErr, sim.ErrTrap) {
					t.Fatalf("functional trapped (%v), native: %v\nsource:\n%s", simErr, natErr, src)
				}
				if len(pl.Stages) == 1 && len(pl.RAs) == 0 && simErr.Error() != natErr.Error() {
					t.Fatalf("single-stage trap messages differ:\n  functional: %v\n  native:     %v\nsource:\n%s",
						simErr, natErr, src)
				}
			case errors.Is(simErr, sim.ErrDeadlock):
				if !errors.Is(natErr, sim.ErrDeadlock) {
					t.Fatalf("functional deadlocked (%v), native: %v\nsource:\n%s", simErr, natErr, src)
				}
			case errors.Is(simErr, sim.ErrTraceLimit):
				if !errors.Is(natErr, sim.ErrTraceLimit) && !errors.Is(natErr, sim.ErrDeadlock) {
					t.Fatalf("functional hit trace limit, native: %v\nsource:\n%s", natErr, src)
				}
			default:
				t.Fatalf("unexpected functional error class: %v\nsource:\n%s", simErr, src)
			}
		}
	})
}
