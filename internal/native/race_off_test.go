//go:build !race

package native_test

const raceEnabled = false
