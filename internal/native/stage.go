package native

import (
	"fmt"
	"math"
	"sync/atomic"

	"phloem/internal/isa"
	"phloem/internal/mem"
	"phloem/internal/sim"
)

// Stage wait states published for deadlock snapshots, encoded into one
// atomic word as state<<32 | queue.
const (
	wRunning = iota
	wDeq
	wEnq
	wBarrier
	wHalted
)

// stageExec is one stage's goroutine state: the interpreter's register
// file, per-queue peek stash (channels cannot peek, and each queue has
// exactly one consumer, so a one-value holdback is exact), control-value
// handler table, and the published wait state.
type stageExec struct {
	e   *engine
	st  *sim.Stage
	use isa.QueueUse
	// prodQ lists every queue this stage produces into, with fan-out
	// destinations expanded, mirroring the engine's producer census.
	prodQ []int

	regsBuf *valBuf
	regs    []sim.Value
	peekBuf *valBuf
	peeked  []sim.Value
	hasPeek []bool
	// handler maps queue id to handler pc (-1: none); nil when the
	// program never registers one.
	handler    []int
	handlerVal int64

	wait atomic.Int64
}

func newStageExec(e *engine, st *sim.Stage, use isa.QueueUse) *stageExec {
	x := &stageExec{e: e, st: st, use: use}
	x.regsBuf = getBuf(st.Prog.NumRegs)
	x.regs = x.regsBuf.s
	for _, ri := range st.Init {
		x.regs[ri.Reg] = ri.Val
	}
	if len(use.Consumes) > 0 {
		x.peekBuf = getBuf(len(e.chans))
		x.peeked = x.peekBuf.s
		x.hasPeek = make([]bool, len(e.chans))
	}
	if use.HasHandler {
		x.handler = make([]int, len(e.chans))
		for i := range x.handler {
			x.handler[i] = -1
		}
	}
	return x
}

// release returns pooled buffers after a successful run.
func (x *stageExec) release() {
	x.regs, x.peeked = nil, nil
	if x.regsBuf != nil {
		x.regsBuf.put()
		x.regsBuf = nil
	}
	if x.peekBuf != nil {
		x.peekBuf.put()
		x.peekBuf = nil
	}
}

func (x *stageExec) run() {
	defer x.e.wg.Done()
	// Typed memory-system panics become structured traps, exactly as in
	// the functional engine; anything else is a real bug and propagates.
	defer func() {
		if r := recover(); r != nil {
			me, ok := r.(*mem.Error)
			if !ok {
				panic(r)
			}
			x.e.fail(&sim.TrapError{PC: -1, Msg: me.Error()})
		}
	}()
	if x.interp() {
		x.wait.Store(wHalted << 32)
		x.e.bar.leave()
		x.e.producerExit(x.prodQ)
	}
}

// trap records a functional trap with the same message the simulator
// would produce and aborts the run.
func (x *stageExec) trap(pc int, msg string) {
	x.e.fail(&sim.TrapError{Stage: x.st.Prog.Name, PC: pc, Msg: msg})
}

// recv receives the next token of q, blocking until a producer delivers
// one, the queue's last producer retires (a deadlock: the token can never
// arrive), or the run aborts.
func (x *stageExec) recv(q int) (sim.Value, bool) {
	e := x.e
	ch := e.chans[q]
	select {
	case v, ok := <-ch:
		if !ok {
			e.fail(&sim.DeadlockError{Snapshot: e.snapshot(x, q)})
			return sim.Value{}, false
		}
		return v, true
	default:
	}
	x.wait.Store(wDeq<<32 | int64(q))
	select {
	case v, ok := <-ch:
		x.wait.Store(wRunning)
		if !ok {
			e.fail(&sim.DeadlockError{Snapshot: e.snapshot(x, q)})
			return sim.Value{}, false
		}
		e.progress.Add(1)
		return v, true
	case <-e.stop:
		return sim.Value{}, false
	}
}

// deqVal consumes the next token of q (peeked token first).
func (x *stageExec) deqVal(q int) (sim.Value, bool) {
	if x.hasPeek[q] {
		x.hasPeek[q] = false
		return x.peeked[q], true
	}
	return x.recv(q)
}

// peekVal reads the next token of q without consuming it.
func (x *stageExec) peekVal(q int) (sim.Value, bool) {
	if !x.hasPeek[q] {
		v, ok := x.recv(q)
		if !ok {
			return sim.Value{}, false
		}
		x.peeked[q] = v
		x.hasPeek[q] = true
	}
	return x.peeked[q], true
}

// send delivers v into q, blocking while the bounded queue is full. When
// q feeds an RA and the machine swaps slots, the RA's sent counter is
// bumped before the send so quiescence covers tokens still in the channel.
func (x *stageExec) send(q int, v sim.Value) bool {
	e := x.e
	if e.hasSwaps {
		if ra := e.raIdx[q]; ra >= 0 {
			e.raSent[ra].Add(1)
		}
	}
	ch := e.chans[q]
	select {
	case ch <- v:
		return true
	default:
	}
	x.wait.Store(wEnq<<32 | int64(q))
	select {
	case ch <- v:
		x.wait.Store(wRunning)
		e.progress.Add(1)
		return true
	case <-e.stop:
		return false
	}
}

// interp runs the stage program to completion, returning true on a clean
// OpHalt and false when the run aborted (the engine's failure is already
// recorded by whoever aborted). Opcode semantics are a line-for-line port
// of the functional engine's runThread.
func (x *stageExec) interp() bool {
	e := x.e
	prog := x.st.Prog
	instrs := prog.Instrs
	regs := x.regs
	pc := 0
	var local uint64

	for {
		if pc < 0 || pc >= len(instrs) {
			e.bumpInstrs(local)
			x.trap(pc, "pc out of range")
			return false
		}
		in := &instrs[pc]
		nextPC := pc + 1
		switch in.Op {
		case isa.OpNop:
		case isa.OpConst:
			regs[in.Dst] = sim.IntVal(in.Imm)
		case isa.OpMov:
			v := regs[in.A]
			v.Ctrl = false
			regs[in.Dst] = v
		case isa.OpIAdd:
			regs[in.Dst] = sim.IntVal(regs[in.A].Bits + regs[in.B].Bits)
		case isa.OpIAddImm:
			regs[in.Dst] = sim.IntVal(regs[in.A].Bits + in.Imm)
		case isa.OpISub:
			regs[in.Dst] = sim.IntVal(regs[in.A].Bits - regs[in.B].Bits)
		case isa.OpIMul:
			regs[in.Dst] = sim.IntVal(regs[in.A].Bits * regs[in.B].Bits)
		case isa.OpIMulImm:
			regs[in.Dst] = sim.IntVal(regs[in.A].Bits * in.Imm)
		case isa.OpIDiv:
			d := regs[in.B].Bits
			if d == 0 {
				e.bumpInstrs(local)
				x.trap(pc, "integer division by zero")
				return false
			}
			regs[in.Dst] = sim.IntVal(regs[in.A].Bits / d)
		case isa.OpIRem:
			d := regs[in.B].Bits
			if d == 0 {
				e.bumpInstrs(local)
				x.trap(pc, "integer remainder by zero")
				return false
			}
			regs[in.Dst] = sim.IntVal(regs[in.A].Bits % d)
		case isa.OpIAnd:
			regs[in.Dst] = sim.IntVal(regs[in.A].Bits & regs[in.B].Bits)
		case isa.OpIAndImm:
			regs[in.Dst] = sim.IntVal(regs[in.A].Bits & in.Imm)
		case isa.OpIOr:
			regs[in.Dst] = sim.IntVal(regs[in.A].Bits | regs[in.B].Bits)
		case isa.OpIXor:
			regs[in.Dst] = sim.IntVal(regs[in.A].Bits ^ regs[in.B].Bits)
		case isa.OpIShl:
			regs[in.Dst] = sim.IntVal(regs[in.A].Bits << uint(regs[in.B].Bits&63))
		case isa.OpIShr:
			regs[in.Dst] = sim.IntVal(regs[in.A].Bits >> uint(regs[in.B].Bits&63))
		case isa.OpIShrImm:
			regs[in.Dst] = sim.IntVal(regs[in.A].Bits >> uint(in.Imm&63))
		case isa.OpICmpEQ:
			regs[in.Dst] = boolVal(regs[in.A].Bits == regs[in.B].Bits)
		case isa.OpICmpNE:
			regs[in.Dst] = boolVal(regs[in.A].Bits != regs[in.B].Bits)
		case isa.OpICmpLT:
			regs[in.Dst] = boolVal(regs[in.A].Bits < regs[in.B].Bits)
		case isa.OpICmpLE:
			regs[in.Dst] = boolVal(regs[in.A].Bits <= regs[in.B].Bits)
		case isa.OpICmpGT:
			regs[in.Dst] = boolVal(regs[in.A].Bits > regs[in.B].Bits)
		case isa.OpICmpGE:
			regs[in.Dst] = boolVal(regs[in.A].Bits >= regs[in.B].Bits)
		case isa.OpFAdd:
			regs[in.Dst] = sim.FloatVal(regs[in.A].Float() + regs[in.B].Float())
		case isa.OpFSub:
			regs[in.Dst] = sim.FloatVal(regs[in.A].Float() - regs[in.B].Float())
		case isa.OpFMul:
			regs[in.Dst] = sim.FloatVal(regs[in.A].Float() * regs[in.B].Float())
		case isa.OpFDiv:
			regs[in.Dst] = sim.FloatVal(regs[in.A].Float() / regs[in.B].Float())
		case isa.OpFNeg:
			regs[in.Dst] = sim.FloatVal(-regs[in.A].Float())
		case isa.OpFAbs:
			regs[in.Dst] = sim.FloatVal(math.Abs(regs[in.A].Float()))
		case isa.OpFCmpEQ:
			regs[in.Dst] = boolVal(regs[in.A].Float() == regs[in.B].Float())
		case isa.OpFCmpNE:
			regs[in.Dst] = boolVal(regs[in.A].Float() != regs[in.B].Float())
		case isa.OpFCmpLT:
			regs[in.Dst] = boolVal(regs[in.A].Float() < regs[in.B].Float())
		case isa.OpFCmpLE:
			regs[in.Dst] = boolVal(regs[in.A].Float() <= regs[in.B].Float())
		case isa.OpFCmpGT:
			regs[in.Dst] = boolVal(regs[in.A].Float() > regs[in.B].Float())
		case isa.OpFCmpGE:
			regs[in.Dst] = boolVal(regs[in.A].Float() >= regs[in.B].Float())
		case isa.OpI2F:
			regs[in.Dst] = sim.FloatVal(float64(regs[in.A].Bits))
		case isa.OpF2I:
			regs[in.Dst] = sim.IntVal(int64(regs[in.A].Float()))

		case isa.OpLoad:
			a := e.slots[in.Slot].Load()
			idx := regs[in.A].Bits
			if !a.InBounds(idx) {
				e.bumpInstrs(local)
				x.trap(pc, fmt.Sprintf("load %s[%d] out of bounds (len %d)", a.Name, idx, a.Len()))
				return false
			}
			regs[in.Dst] = loadValue(a, idx)
		case isa.OpPrefetch:
			// Out-of-bounds prefetches are dropped, as hardware would; a
			// software interpreter has nothing useful to prefetch into.
		case isa.OpStore:
			a := e.slots[in.Slot].Load()
			idx := regs[in.A].Bits
			if !a.InBounds(idx) {
				e.bumpInstrs(local)
				x.trap(pc, fmt.Sprintf("store %s[%d] out of bounds (len %d)", a.Name, idx, a.Len()))
				return false
			}
			storeValue(a, idx, regs[in.B])

		case isa.OpEnq:
			if !x.send(in.Q, regs[in.A]) {
				e.bumpInstrs(local)
				return false
			}
			if e.fan != nil {
				for _, d := range e.fan[in.Q] {
					if !x.send(d, regs[in.A]) {
						e.bumpInstrs(local)
						return false
					}
				}
			}
		case isa.OpEnqCtrl:
			if !x.send(in.Q, sim.CtrlVal(in.Imm)) {
				e.bumpInstrs(local)
				return false
			}
		case isa.OpEnqCtrlV:
			if !x.send(in.Q, sim.CtrlVal(regs[in.A].Bits)) {
				e.bumpInstrs(local)
				return false
			}
		case isa.OpDeq:
			v, ok := x.deqVal(in.Q)
			if !ok {
				e.bumpInstrs(local)
				return false
			}
			if x.handler != nil && x.handler[in.Q] >= 0 && v.Ctrl {
				x.handlerVal = v.Bits
				nextPC = x.handler[in.Q]
			} else {
				regs[in.Dst] = v
			}
		case isa.OpPeek:
			v, ok := x.peekVal(in.Q)
			if !ok {
				e.bumpInstrs(local)
				return false
			}
			regs[in.Dst] = v
		case isa.OpIsCtrl:
			regs[in.Dst] = boolVal(regs[in.A].Ctrl)
		case isa.OpCtrlCode:
			regs[in.Dst] = sim.IntVal(regs[in.A].Bits)
		case isa.OpSetHandler:
			x.handler[in.Q] = in.Target
		case isa.OpHandlerVal:
			regs[in.Dst] = sim.IntVal(x.handlerVal)

		case isa.OpBr:
			if regs[in.A].Bits != 0 {
				nextPC = in.Target
			}
		case isa.OpBrZ:
			if regs[in.A].Bits == 0 {
				nextPC = in.Target
			}
		case isa.OpJmp:
			nextPC = in.Target
		case isa.OpHalt:
			e.bumpInstrs(local + 1)
			return true
		case isa.OpBarrier:
			x.wait.Store(wBarrier << 32)
			if !e.bar.wait() {
				e.bumpInstrs(local)
				return false
			}
			x.wait.Store(wRunning)
		case isa.OpSwapSlots:
			// Quiesce RAs first so in-flight accelerator work observes the
			// pre-swap bindings, matching the functional drain-then-swap.
			if !e.quiesceRAs() {
				e.bumpInstrs(local)
				return false
			}
			a := e.slots[in.Slot].Load()
			b := e.slots[in.Slot2].Load()
			e.slots[in.Slot].Store(b)
			e.slots[in.Slot2].Store(a)
		default:
			e.bumpInstrs(local)
			x.trap(pc, fmt.Sprintf("unimplemented op %v", in.Op))
			return false
		}
		pc = nextPC
		local++
		if local >= flushEvery {
			e.bumpInstrs(local)
			local = 0
			if e.stopped.Load() {
				return false
			}
		}
	}
}

func boolVal(b bool) sim.Value {
	if b {
		return sim.IntVal(1)
	}
	return sim.IntVal(0)
}

func loadValue(a *mem.Array, idx int64) sim.Value {
	if a.Kind == mem.F64 {
		return sim.FloatVal(a.LoadFloat(idx))
	}
	return sim.IntVal(a.LoadInt(idx))
}

func storeValue(a *mem.Array, idx int64, v sim.Value) {
	if a.Kind == mem.F64 {
		a.StoreFloat(idx, v.Float())
		return
	}
	a.StoreInt(idx, v.Bits)
}
