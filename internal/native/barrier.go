package native

import "sync"

// barrier reproduces the functional engine's release rule: all waiting
// threads are released when every *live* (non-halted) stage is waiting.
// A stage that halts leaves the barrier group, which can itself release
// the remaining waiters — exactly like releaseBarriers recomputing the
// live count each round.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	live    int
	waiting int
	gen     uint64
	aborted bool
}

func newBarrier(live int) *barrier {
	b := &barrier{live: live}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until the barrier releases; false means the run aborted.
func (b *barrier) wait() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return false
	}
	b.waiting++
	if b.waiting == b.live {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		return true
	}
	gen := b.gen
	for b.gen == gen && !b.aborted {
		b.cond.Wait()
	}
	return !b.aborted
}

// leave retires a halted stage from the barrier group, releasing the
// remaining waiters if they are now all of the live stages.
func (b *barrier) leave() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.live--
	if b.live > 0 && b.waiting == b.live {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
	}
}

// abort wakes every waiter with failure.
func (b *barrier) abort() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.aborted = true
	b.cond.Broadcast()
}
