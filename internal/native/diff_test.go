package native_test

import (
	"math"
	"testing"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/graph"
	"phloem/internal/matrix"
	"phloem/internal/mem"
	"phloem/internal/native"
	"phloem/internal/pipeline"
	"phloem/internal/taco"
	"phloem/internal/workloads"
)

// The differential contract: any pipeline the compiler (or a hand author)
// produces must run on the native backend with bit-identical output memory
// to the functional simulator and the same executed-instruction count.
// Bindings are copied at Instantiate, so two instances never share state.

// runDiff runs pl on both backends from identical bindings and compares
// the complete memory spaces bitwise, the instruction counts, and the
// leftover-token profile. It returns the native instance for extra
// workload-specific verification.
func runDiff(t *testing.T, name string, pl *pipeline.Pipeline, bind pipeline.Bindings) *pipeline.Instance {
	t.Helper()
	cfg := arch.DefaultConfig(1)

	simInst, err := pipeline.Instantiate(pl, cfg, bind)
	if err != nil {
		t.Fatalf("%s: instantiate(sim): %v", name, err)
	}
	ts, err := simInst.Machine.RunFunctional()
	if err != nil {
		t.Fatalf("%s: functional: %v", name, err)
	}

	natInst, err := pipeline.Instantiate(pl, cfg, bind)
	if err != nil {
		t.Fatalf("%s: instantiate(native): %v", name, err)
	}
	st, err := native.Run(natInst.Machine, native.Options{})
	if err != nil {
		t.Fatalf("%s: native: %v", name, err)
	}

	if st.Instructions != ts.Instructions {
		t.Errorf("%s: native executed %d instructions, functional %d",
			name, st.Instructions, ts.Instructions)
	}
	if len(st.Leftover) != len(ts.Leftover) {
		t.Fatalf("%s: leftover lengths differ: %d vs %d", name, len(st.Leftover), len(ts.Leftover))
	}
	for q := range st.Leftover {
		if st.Leftover[q] != ts.Leftover[q] {
			t.Errorf("%s: q%d leftover %d native vs %d functional", name, q, st.Leftover[q], ts.Leftover[q])
		}
	}
	compareSpaces(t, name, simInst.Machine.Space, natInst.Machine.Space)
	return natInst
}

// compareSpaces requires every array in both spaces to match bitwise
// (floats compared by bit pattern, so NaN payloads and signed zeros count).
func compareSpaces(t *testing.T, name string, a, b *mem.Space) {
	t.Helper()
	as, bs := a.Arrays(), b.Arrays()
	if len(as) != len(bs) {
		t.Fatalf("%s: array counts differ: %d vs %d", name, len(as), len(bs))
	}
	for i := range as {
		x, y := as[i], bs[i]
		if x.Name != y.Name || x.Kind != y.Kind || x.Len() != y.Len() {
			t.Fatalf("%s: array %d shape mismatch: %s/%v/%d vs %s/%v/%d",
				name, i, x.Name, x.Kind, x.Len(), y.Name, y.Kind, y.Len())
		}
		diffs := 0
		switch x.Kind {
		case mem.F64:
			xf, yf := x.Floats(), y.Floats()
			for j := range xf {
				if math.Float64bits(xf[j]) != math.Float64bits(yf[j]) {
					if diffs == 0 {
						t.Errorf("%s: %s[%d] = %x (sim) vs %x (native)",
							name, x.Name, j, math.Float64bits(xf[j]), math.Float64bits(yf[j]))
					}
					diffs++
				}
			}
		case mem.I32:
			xi, yi := x.Int32s(), y.Int32s()
			for j := range xi {
				if xi[j] != yi[j] {
					if diffs == 0 {
						t.Errorf("%s: %s[%d] = %d (sim) vs %d (native)", name, x.Name, j, xi[j], yi[j])
					}
					diffs++
				}
			}
		default:
			xi, yi := x.Ints(), y.Ints()
			for j := range xi {
				if xi[j] != yi[j] {
					if diffs == 0 {
						t.Errorf("%s: %s[%d] = %d (sim) vs %d (native)", name, x.Name, j, xi[j], yi[j])
					}
					diffs++
				}
			}
		}
		if diffs > 1 {
			t.Errorf("%s: %s: %d elements differ in total", name, x.Name, diffs)
		}
	}
}

func compileFamily(t *testing.T, b *workloads.Benchmark, opt core.Options) *pipeline.Pipeline {
	t.Helper()
	prog, err := workloads.CompileSerial(b.SerialSource)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compile(prog, opt)
	if err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	return res.Pipeline
}

// TestDiffBenchmarkFamilies runs every benchmark family's compiled
// pipeline on every test input through both backends, with commopt off
// (author/default queue depths) and on (pass-inferred capacities and
// multicast fan-outs feeding native channel sizing).
func TestDiffBenchmarkFamilies(t *testing.T) {
	for _, commOpt := range []bool{false, true} {
		opt := core.DefaultOptions()
		opt.CommOpt = commOpt
		variant := "static"
		if commOpt {
			variant = "commopt"
		}
		for _, b := range workloads.Benchmarks(workloads.ScaleTest) {
			pl := compileFamily(t, b, opt)
			for _, in := range b.Test {
				name := b.Name + "/" + variant + "/" + in.Name
				inst := runDiff(t, name, pl, in.Bind())
				if err := in.Verify(inst); err != nil {
					t.Errorf("%s: native result fails workload verify: %v", name, err)
				}
			}
		}
	}
}

// TestDiffSerial covers the single-stage degenerate shape (no queues at
// all) for every family.
func TestDiffSerial(t *testing.T) {
	for _, b := range workloads.Benchmarks(workloads.ScaleTest) {
		prog, err := workloads.CompileSerial(b.SerialSource)
		if err != nil {
			t.Fatal(err)
		}
		pl := pipeline.NewSerial(prog)
		in := b.Test[len(b.Test)-1]
		inst := runDiff(t, b.Name+"/serial/"+in.Name, pl, in.Bind())
		if err := in.Verify(inst); err != nil {
			t.Errorf("%s serial: %v", b.Name, err)
		}
	}
}

// TestDiffNoRestrict covers the effects-analysis variants compiled
// without restrict qualifiers.
func TestDiffNoRestrict(t *testing.T) {
	res, err := core.CompileSource(workloads.PRDApplySource, core.DefaultOptions())
	if err != nil {
		t.Fatalf("prd_apply: %v", err)
	}
	inst := runDiff(t, "norestrict/prd_apply", res.Pipeline, workloads.PRDApplyBindings(64, 7))
	if err := workloads.PRDApplyVerify(inst, workloads.PRDApplyBindings(64, 7)); err != nil {
		t.Error(err)
	}

	res, err = core.CompileSource(workloads.SpMVNoRestrictSource, core.DefaultOptions())
	if err != nil {
		t.Fatalf("spmv: %v", err)
	}
	for _, m := range []*matrix.CSR{
		matrix.Banded("banded", 48, 4, 6, 1),
		matrix.Scattered("scattered", 48, 5, 2),
	} {
		b := workloads.SpMVBindings(m)
		inst := runDiff(t, "norestrict/spmv/"+m.Name, res.Pipeline, b)
		if err := workloads.SpMVVerify(inst, m, b); err != nil {
			t.Error(err)
		}
	}
}

// TestDiffManual covers the hand-written pipelines: BFS exercises control
// handlers, a feedback queue, and SwapSlots under chained RAs; SpMM
// exercises four RAs and the skip protocol.
func TestDiffManual(t *testing.T) {
	bfs, err := workloads.ManualBFS()
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*graph.CSR{
		graph.Grid("grid", 20, 20, 2),
		graph.PowerLaw("pl", 400, 3, 3),
		graph.Trace("tr", 12, 10, 4),
	} {
		inst := runDiff(t, "manual/bfs/"+g.Name, bfs, workloads.BFSBindings(g, 0))
		if err := workloads.BFSVerify(inst, g, 0); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}

	spmm, err := workloads.ManualSpMM()
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Banded("a", 40, 3, 5, 1)
	bt := matrix.Scattered("bt", 40, 4, 2)
	inst := runDiff(t, "manual/spmm", spmm, workloads.SpMMBindings(a, bt))
	if err := workloads.SpMMVerify(inst, a, bt); err != nil {
		t.Error(err)
	}
}

// TestDiffTaco covers the Taco-emitted kernels on two sparsity patterns.
func TestDiffTaco(t *testing.T) {
	for _, k := range taco.Kernels() {
		src, err := taco.Emit(k)
		if err != nil {
			t.Fatalf("%v: emit: %v", k, err)
		}
		res, err := core.CompileSource(src, core.DefaultOptions())
		if err != nil {
			t.Fatalf("%v: compile: %v", k, err)
		}
		for _, m := range []*matrix.CSR{
			matrix.Banded("banded", 48, 4, 6, 1),
			matrix.Scattered("scattered", 48, 5, 2),
		} {
			name := "taco/" + string(k) + "/" + m.Name
			inst := runDiff(t, name, res.Pipeline, taco.Bindings(k, m, 7))
			if err := taco.Verify(k, m, 7, inst); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		}
	}
}
