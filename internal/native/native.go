// Package native executes a compiled pipeline as real Go concurrency
// instead of simulating it: one goroutine per stage, one goroutine per
// reference accelerator (a batched prefetching reader), and one bounded
// channel per architectural queue. It consumes the same post-pass
// sim.Machine the simulator runs — same flattened stage programs, same
// queue specs, RA specs, fan-out edges, slot table, and memory space — so
// any pipeline the compiler produces runs on either backend unchanged.
//
// Semantics follow the functional simulator exactly where both are
// defined: identical opcode behavior (including Mov clearing the control
// tag and shift-amount masking), identical trap conditions and messages,
// control-value handler fires on dequeue, barrier release when every live
// stage waits, and RA quiescence before OpSwapSlots. Differential tests
// require bit-identical output memory state and equal executed-instruction
// counts against sim.RunFunctional on every workload.
//
// The one deliberate divergence is queue capacity: the functional phase
// uses unbounded queues, while this backend uses bounded channels sized by
// arch.QueueSpec.Capacity — the same bound the timing model enforces. A
// pipeline that overfills a queue nobody drains therefore backpressures
// and deadlocks here (and in the timing phase) where the functional phase
// would merely report leftovers; the commopt Q4 capacity argument is what
// makes compiler-sized pipelines safe (see DESIGN.md §16).
//
// Failures map onto the simulator's sentinel error family, so callers
// classify native errors with errors.Is against sim.ErrDeadlock,
// sim.ErrTrap, sim.ErrTraceLimit, sim.ErrCancelled, and sim.ErrWallBudget
// exactly as they do for simulated runs.
package native

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"phloem/internal/mem"
	"phloem/internal/sim"
)

const (
	// defaultRABatch is the RA reader's drain-batch size: tokens greedily
	// collected per channel rendezvous. Batching amortizes channel
	// synchronization and presents the memory system with a window of
	// independent loads — the software analogue of the RA's
	// outstanding-request window.
	defaultRABatch = 256
	// defaultWatchdog is the no-progress interval after which the engine
	// starts suspecting a deadlock; two consecutive stalled intervals
	// declare one. Cheap enough to leave at 100ms; deadlock tests lower it.
	defaultWatchdog = 100 * time.Millisecond
	// flushEvery is how many locally-counted instructions a stage executes
	// between flushes to the shared progress/instruction counters (and
	// stop-flag polls) — the native analogue of sim's amortized
	// interrupt-check period.
	flushEvery = 1024
	// scanChunk bounds how many elements a SCAN RA streams between
	// progress bumps, so huge ranges can't starve the watchdog.
	scanChunk = 4096
)

// Options tunes the native executor. The zero value is ready to use.
type Options struct {
	// RABatch overrides the RA drain-batch size (0: default 256).
	RABatch int
	// WatchdogInterval overrides the deadlock watchdog period (0: 100ms).
	// Deadlock is declared after two consecutive stalled intervals.
	WatchdogInterval time.Duration
}

// Stats reports a native run. Instructions counts every executed stage
// instruction (including Halt and Barrier, excluding RA micro-events) and
// equals sim.TraceSet.Instructions for the same machine — the
// deterministic cross-backend work metric. Wall is host-dependent.
type Stats struct {
	Instructions uint64
	Wall         time.Duration
	// Leftover is the per-queue count of tokens never consumed, matching
	// sim.TraceSet.Leftover (a peeked-but-never-dequeued token still counts
	// as in its queue).
	Leftover []int
	Stages   int
	RAs      int
	Queues   int
}

func (s *Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "native: %d instructions in %v (%d stages, %d RAs, %d queues)\n",
		s.Instructions, s.Wall, s.Stages, s.RAs, s.Queues)
	left := 0
	for _, n := range s.Leftover {
		left += n
	}
	if left > 0 {
		fmt.Fprintf(&sb, "native: %d leftover queue tokens\n", left)
	}
	return sb.String()
}

// engine holds the shared state of one native run.
type engine struct {
	m   *sim.Machine
	opt Options

	chans []chan sim.Value
	// slots is the machine-wide array-slot table; OpSwapSlots exchanges
	// two entries atomically, loads are single atomic pointer reads.
	slots []atomic.Pointer[mem.Array]
	// fan maps a queue id to the fan-out destinations every data enqueue
	// into it is duplicated to (nil for ordinary queues).
	fan [][]int
	// raIdx maps a queue id to the RA consuming it (-1 if none); producers
	// bump that RA's sent counter before sending so OpSwapSlots can
	// quiesce in-flight accelerator work.
	raIdx []int
	// prod counts live producers per queue (stages, fan-out duplication,
	// RA outputs). The producer that decrements a count to zero closes the
	// channel; queues with no producers are closed at startup.
	prod []atomic.Int32

	stages []*stageExec
	ras    []*raExec

	bar *barrier

	// hasSwaps gates the RA quiesce counters: pipelines without
	// OpSwapSlots never pay for them.
	hasSwaps bool
	raSent   []atomic.Uint64
	raDone   []atomic.Uint64

	// instrs accumulates flushed stage instruction counts; progress
	// additionally counts RA token completions. The watchdog declares
	// deadlock when progress stalls; instrs over cap is the livelock guard.
	instrs   atomic.Uint64
	progress atomic.Uint64
	cap      uint64

	// stop is closed (once) with failure recorded when any goroutine
	// aborts the run; stopped is the cheap flag for amortized polls.
	stop     chan struct{}
	stopOnce sync.Once
	stopped  atomic.Bool
	failure  error

	wg      sync.WaitGroup
	allDone chan struct{}
}

// Run executes the machine's stage programs natively to completion.
// Memory side effects remain in m.Space (and m.Slots reflects any slot
// swaps), exactly as after sim.RunFunctional. m.Ctx, m.WallDeadline, and
// m.MaxTraceEntries are honored with the same sentinel errors as the
// simulator.
func Run(m *sim.Machine, opt Options) (*Stats, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	e := newEngine(m, opt)
	start := time.Now()

	for _, ra := range e.ras {
		e.wg.Add(1)
		go ra.run()
	}
	for _, st := range e.stages {
		e.wg.Add(1)
		go st.run()
	}
	monDone := e.startMonitor()
	e.wg.Wait()
	close(e.allDone)
	<-monDone

	if e.failure != nil {
		return nil, e.failure
	}
	// A cancellation that raced the final stage exits still counts: the
	// simulator's amortized poll has the same property.
	if err := e.checkInterrupt(); err != nil {
		return nil, err
	}
	st := &Stats{
		Instructions: e.instrs.Load(),
		Wall:         time.Since(start),
		Stages:       len(e.stages),
		RAs:          len(e.ras),
		Queues:       len(e.chans),
	}
	st.Leftover = make([]int, len(e.chans))
	for q, ch := range e.chans {
		st.Leftover[q] = len(ch)
	}
	for _, sx := range e.stages {
		for q := range sx.hasPeek {
			if sx.hasPeek[q] {
				st.Leftover[q]++
			}
		}
		sx.release()
	}
	for _, ra := range e.ras {
		ra.release()
	}
	// Write final slot bindings back so callers observe swaps exactly as
	// they would after a functional run.
	for i := range e.slots {
		m.Slots[i] = e.slots[i].Load()
	}
	return st, nil
}

func newEngine(m *sim.Machine, opt Options) *engine {
	if opt.RABatch <= 0 {
		opt.RABatch = defaultRABatch
	}
	if opt.WatchdogInterval <= 0 {
		opt.WatchdogInterval = defaultWatchdog
	}
	e := &engine{
		m:       m,
		opt:     opt,
		stop:    make(chan struct{}),
		allDone: make(chan struct{}),
		cap:     uint64(m.MaxTraceEntries),
	}
	if e.cap == 0 {
		e.cap = 64 << 20
	}
	e.chans = make([]chan sim.Value, len(m.Queues))
	for q := range m.Queues {
		e.chans[q] = make(chan sim.Value, m.Queues[q].Capacity(m.Cfg.QueueDepth))
	}
	e.slots = make([]atomic.Pointer[mem.Array], len(m.Slots))
	for i, a := range m.Slots {
		e.slots[i].Store(a)
	}
	if len(m.FanOuts) > 0 {
		e.fan = make([][]int, len(m.Queues))
		for _, f := range m.FanOuts {
			e.fan[f.Src] = f.Dst
		}
	}
	e.raIdx = make([]int, len(m.Queues))
	for q := range e.raIdx {
		e.raIdx[q] = -1
	}
	for i := range m.RAs {
		e.raIdx[m.RAs[i].InQ] = i
	}
	e.raSent = make([]atomic.Uint64, len(m.RAs))
	e.raDone = make([]atomic.Uint64, len(m.RAs))

	// Static producer census. Every way a token can enter a queue is
	// statically known: a stage enqueue, its fan-out duplication, or an RA
	// output. Each producer decrements on clean exit; zero closes the
	// channel, which is how consumers learn a queue can never be fed again.
	e.prod = make([]atomic.Int32, len(m.Queues))
	for _, st := range m.Stages {
		u := st.Prog.QueueUse()
		if u.HasSwap {
			e.hasSwaps = true
		}
		sx := newStageExec(e, st, u)
		for _, q := range u.Produces {
			sx.prodQ = append(sx.prodQ, q)
			if e.fan != nil {
				sx.prodQ = append(sx.prodQ, e.fan[q]...)
			}
		}
		for _, q := range sx.prodQ {
			e.prod[q].Add(1)
		}
		e.stages = append(e.stages, sx)
	}
	for i := range m.RAs {
		e.prod[m.RAs[i].OutQ].Add(1)
		e.ras = append(e.ras, newRAExec(e, i))
	}
	for q := range e.prod {
		if e.prod[q].Load() == 0 {
			close(e.chans[q])
		}
	}
	e.bar = newBarrier(len(e.stages))
	return e
}

// producerExit retires one producer: queues whose last producer leaves are
// closed so their consumer unblocks (drains remaining buffered tokens,
// then observes closure).
func (e *engine) producerExit(queues []int) {
	for _, q := range queues {
		if e.prod[q].Add(-1) == 0 {
			close(e.chans[q])
		}
	}
}

// fail records the first failure and wakes every blocked goroutine. The
// first caller wins; later failures (often knock-on effects of the abort)
// are dropped, matching the functional engine's first-error semantics.
func (e *engine) fail(err error) {
	e.stopOnce.Do(func() {
		e.failure = err
		e.stopped.Store(true)
		close(e.stop)
		e.bar.abort()
	})
}

// bumpInstrs flushes a stage's local instruction count and enforces the
// livelock guard (the functional trace cap's analogue).
func (e *engine) bumpInstrs(n uint64) {
	if n == 0 {
		return
	}
	total := e.instrs.Add(n)
	e.progress.Add(n)
	if total > e.cap {
		e.fail(&sim.TraceLimitError{Entries: total, Limit: e.cap})
	}
}

// checkInterrupt mirrors sim.Machine.checkInterrupt for the native phase.
func (e *engine) checkInterrupt() error {
	if e.m.Ctx != nil {
		if err := e.m.Ctx.Err(); err != nil {
			return &sim.CancelledError{Phase: "native", Cause: err}
		}
	}
	if !e.m.WallDeadline.IsZero() && time.Now().After(e.m.WallDeadline) {
		return &sim.WallBudgetError{Phase: "native"}
	}
	return nil
}

// quiesceRAs waits until every RA has fully processed every token sent
// toward it (sent counters are bumped before the send, done counters
// after processing, and an RA feeding another RA bumps the downstream
// sent before its own done — so while any token is in flight at least one
// pair disagrees). Used by OpSwapSlots so in-flight accelerator work
// observes pre-swap bindings, exactly like the functional engine's
// drain-then-swap.
func (e *engine) quiesceRAs() bool {
	for {
		if e.stopped.Load() {
			return false
		}
		idle := true
		for i := range e.raSent {
			if e.raSent[i].Load() != e.raDone[i].Load() {
				idle = false
				break
			}
		}
		if idle {
			return true
		}
		time.Sleep(time.Microsecond)
	}
}
