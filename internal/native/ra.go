package native

import (
	"fmt"

	"phloem/internal/arch"
	"phloem/internal/mem"
	"phloem/internal/sim"
)

// raExec is one reference accelerator's goroutine: a batched prefetching
// reader. It blocks for the first token, then greedily drains its input
// channel up to the batch size before processing, amortizing channel
// synchronization and giving the memory system a window of independent
// loads — the software analogue of the RA's outstanding-request window.
// Token semantics (INDIRECT per-index loads, SCAN [start,end) range
// streaming with optional EmitNext group markers, control pass-through,
// and trap conditions) match the functional engine's propagateRAs.
type raExec struct {
	e   *engine
	idx int
	// prodQ is the output queue, in producer-census form.
	prodQ []int
	buf   *valBuf
	// pendStart carries a SCAN range's start token across batches.
	pendStart sim.Value
	hasStart  bool
}

func newRAExec(e *engine, idx int) *raExec {
	return &raExec{e: e, idx: idx, prodQ: []int{e.m.RAs[idx].OutQ}}
}

func (r *raExec) release() {
	if r.buf != nil {
		r.buf.put()
		r.buf = nil
	}
}

func (r *raExec) run() {
	e := r.e
	defer e.wg.Done()
	defer func() {
		if rec := recover(); rec != nil {
			me, ok := rec.(*mem.Error)
			if !ok {
				panic(rec)
			}
			e.fail(&sim.TrapError{PC: -1, Msg: me.Error()})
		}
	}()
	spec := &e.m.RAs[r.idx]
	in := e.chans[spec.InQ]
	r.buf = getBuf(e.opt.RABatch)
	batch := r.buf.s[:0]
	closed := false
	for !closed {
		// Block for the first token of a batch.
		var first sim.Value
		var ok bool
		select {
		case first, ok = <-in:
		case <-e.stop:
			return
		}
		if !ok {
			break
		}
		batch = append(batch[:0], first)
		// Greedy non-blocking drain up to the batch size.
	drain:
		for len(batch) < cap(batch) {
			select {
			case v, ok := <-in:
				if !ok {
					closed = true
					break drain
				}
				batch = append(batch, v)
			default:
				break drain
			}
		}
		for _, v := range batch {
			if !r.process(spec, v) {
				return
			}
			if e.hasSwaps {
				e.raDone[r.idx].Add(1)
			}
		}
		e.progress.Add(uint64(len(batch)))
	}
	// Input closed and drained: this RA can never produce again.
	e.producerExit(r.prodQ)
}

// process handles one input token, pushing any outputs downstream.
func (r *raExec) process(spec *arch.RASpec, v sim.Value) bool {
	e := r.e
	outQ := spec.OutQ
	if v.Ctrl {
		if r.hasStart {
			e.fail(&sim.TrapError{Stage: "ra:" + spec.Name, PC: -1,
				Msg: "control value between SCAN start/end pair"})
			return false
		}
		return r.send(outQ, v)
	}
	arr := e.slots[spec.Slot].Load()
	switch spec.Mode {
	case arch.RAIndirect:
		idx := v.Bits
		if !arr.InBounds(idx) {
			e.fail(&sim.TrapError{Stage: "ra:" + spec.Name, PC: -1,
				Msg: fmt.Sprintf("index %d out of bounds for %s (len %d)", idx, arr.Name, arr.Len())})
			return false
		}
		return r.send(outQ, loadValue(arr, idx))
	default: // arch.RAScan
		if !r.hasStart {
			r.pendStart = v
			r.hasStart = true
			return true
		}
		start, end := r.pendStart.Bits, v.Bits
		r.hasStart = false
		if start < 0 || end < start || (end > start && !arr.InBounds(end-1)) {
			e.fail(&sim.TrapError{Stage: "ra:" + spec.Name, PC: -1,
				Msg: fmt.Sprintf("scan range [%d,%d) out of bounds for %s (len %d)", start, end, arr.Name, arr.Len())})
			return false
		}
		for i := start; i < end; i++ {
			if !r.send(outQ, loadValue(arr, i)) {
				return false
			}
			if (i-start)&(scanChunk-1) == scanChunk-1 {
				// Keep the watchdog fed during very long range streams.
				e.progress.Add(1)
			}
		}
		if spec.EmitNext {
			return r.send(outQ, sim.CtrlVal(spec.NextCode))
		}
		return true
	}
}

// send delivers v into q. RA output queues never fan out (validated), but
// a chained downstream RA's sent counter is bumped before the send and
// before this RA's done counter, preserving the quiesce invariant across
// RA chains.
func (r *raExec) send(q int, v sim.Value) bool {
	e := r.e
	if e.hasSwaps {
		if ra := e.raIdx[q]; ra >= 0 {
			e.raSent[ra].Add(1)
		}
	}
	ch := e.chans[q]
	select {
	case ch <- v:
		return true
	default:
	}
	select {
	case ch <- v:
		return true
	case <-e.stop:
		return false
	}
}
