package native_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"phloem/internal/arch"
	"phloem/internal/core"
	"phloem/internal/isa"
	"phloem/internal/mem"
	"phloem/internal/native"
	"phloem/internal/pipeline"
	"phloem/internal/sim"
	"phloem/internal/workloads"
)

// Machine-level tests for the drain/termination protocol, the guardrails,
// and the sentinel-error contract. Machines are built twice (engines
// consume queue/slot state) so functional and native runs never share
// anything but the build recipe.

func thread(n int) arch.ThreadID { return arch.ThreadID{Core: 0, Thread: n} }

// diffMachines runs the same machine recipe through both backends and
// requires matching instruction counts, leftovers, and memory.
func diffMachines(t *testing.T, name string, build func() *sim.Machine) {
	t.Helper()
	fm := build()
	ts, err := fm.RunFunctional()
	if err != nil {
		t.Fatalf("%s: functional: %v", name, err)
	}
	nm := build()
	st, err := native.Run(nm, native.Options{})
	if err != nil {
		t.Fatalf("%s: native: %v", name, err)
	}
	if st.Instructions != ts.Instructions {
		t.Errorf("%s: native %d instructions, functional %d", name, st.Instructions, ts.Instructions)
	}
	for q := range st.Leftover {
		if st.Leftover[q] != ts.Leftover[q] {
			t.Errorf("%s: q%d leftover %d native vs %d functional", name, q, st.Leftover[q], ts.Leftover[q])
		}
	}
	compareSpaces(t, name, fm.Space, nm.Space)
}

// TestEmptyPipeline: a machine whose only stage immediately halts, and a
// machine with no stages at all.
func TestEmptyPipeline(t *testing.T) {
	diffMachines(t, "halt-only", func() *sim.Machine {
		m := sim.NewMachine(arch.DefaultConfig(1))
		b := isa.NewBuilder("empty")
		b.Halt()
		m.AddStage(&sim.Stage{Prog: b.MustBuild(), Thread: thread(0)})
		return m
	})
	m := sim.NewMachine(arch.DefaultConfig(1))
	st, err := native.Run(m, native.Options{})
	if err != nil {
		t.Fatalf("no-stage machine: %v", err)
	}
	if st.Instructions != 0 {
		t.Errorf("no-stage machine executed %d instructions", st.Instructions)
	}
}

// TestHandlerOnlyStage: a consumer that does nothing but loop on deq with
// a registered control handler as its sole exit path.
func TestHandlerOnlyStage(t *testing.T) {
	diffMachines(t, "handler-only", func() *sim.Machine {
		m := sim.NewMachine(arch.DefaultConfig(1))
		out := m.Space.Alloc("out", mem.I64, 2)
		so := m.AddSlot("out", out)
		q := m.AddQueue("work")

		p := isa.NewBuilder("producer")
		for i := int64(1); i <= 3; i++ {
			v := p.Const(i * 10)
			p.Enq(q, v)
		}
		p.EnqCtrl(q, arch.CtrlEnd)
		p.Halt()
		m.AddStage(&sim.Stage{Prog: p.MustBuild(), Thread: thread(0)})

		c := isa.NewBuilder("consumer")
		c.SetHandler(q, "end")
		acc := c.Const(0)
		zero := c.Const(0)
		one := c.Const(1)
		c.Label("loop")
		v := c.Deq(q)
		c.Op2To(acc, isa.OpIAdd, acc, v)
		c.Jmp("loop")
		c.Label("end")
		c.Store(so, zero, acc)
		hv := c.HandlerVal()
		c.Store(so, one, hv)
		c.Halt()
		m.AddStage(&sim.Stage{Prog: c.MustBuild(), Thread: thread(1)})
		return m
	})
}

// TestOverSentQueue: tokens left in a queue nobody consumes. Within the
// queue's capacity both backends finish and report the same leftovers;
// past the capacity the native backend (bounded channels, like the timing
// model) backpressure-deadlocks where the unbounded functional phase only
// reports leftovers — the documented divergence.
func TestOverSentQueue(t *testing.T) {
	build := func(tokens int64) func() *sim.Machine {
		return func() *sim.Machine {
			m := sim.NewMachine(arch.DefaultConfig(1))
			m.Queues = append(m.Queues, arch.QueueSpec{Name: "sink", Depth: 8})
			b := isa.NewBuilder("producer")
			i := b.Const(0)
			n := b.Const(tokens)
			b.Label("loop")
			done := b.Op2(isa.OpICmpGE, i, n)
			b.Br(done, "out")
			b.Enq(0, i)
			b.OpImmTo(i, isa.OpIAddImm, i, 1)
			b.Jmp("loop")
			b.Label("out")
			b.Halt()
			m.AddStage(&sim.Stage{Prog: b.MustBuild(), Thread: thread(0)})
			return m
		}
	}
	diffMachines(t, "oversend-within-cap", build(4))

	// Past capacity: functional succeeds with 12 leftovers, native blocks
	// on the full channel with no consumer and the watchdog fires.
	ts, err := build(12)().RunFunctional()
	if err != nil {
		t.Fatalf("functional oversend: %v", err)
	}
	if ts.Leftover[0] != 12 {
		t.Fatalf("functional leftover = %d, want 12", ts.Leftover[0])
	}
	_, err = native.Run(build(12)(), native.Options{WatchdogInterval: 10 * time.Millisecond})
	if !errors.Is(err, sim.ErrDeadlock) {
		t.Fatalf("native oversend past capacity: got %v, want ErrDeadlock", err)
	}
	if !strings.Contains(err.Error(), "enq-full") {
		t.Errorf("deadlock snapshot should report enq-full, got: %v", err)
	}
}

// TestZeroProducerDeq: dequeuing a queue no stage or RA ever feeds fails
// immediately as a deadlock (channel closed at startup), on both backends,
// with the queue named in the snapshot.
func TestZeroProducerDeq(t *testing.T) {
	build := func() *sim.Machine {
		m := sim.NewMachine(arch.DefaultConfig(1))
		m.Queues = append(m.Queues, arch.QueueSpec{Name: "never_fed"})
		b := isa.NewBuilder("starved")
		b.DeqTo(b.Reg(), 0)
		b.Halt()
		m.AddStage(&sim.Stage{Prog: b.MustBuild(), Thread: thread(0)})
		return m
	}
	_, ferr := build().RunFunctional()
	if !errors.Is(ferr, sim.ErrDeadlock) {
		t.Fatalf("functional: got %v, want ErrDeadlock", ferr)
	}
	_, nerr := native.Run(build(), native.Options{})
	if !errors.Is(nerr, sim.ErrDeadlock) {
		t.Fatalf("native: got %v, want ErrDeadlock", nerr)
	}
	if !strings.Contains(nerr.Error(), "never_fed") {
		t.Errorf("snapshot should name the starved queue, got: %v", nerr)
	}
	var de *sim.DeadlockError
	if !errors.As(nerr, &de) || de.Snapshot.Phase != "native" {
		t.Errorf("expected a native-phase DeadlockError, got %#v", nerr)
	}
}

// TestCrossBlockDeadlock: two stages each waiting for the other's first
// token. Both queues have live producers, so no channel ever closes and
// the no-progress watchdog must catch it.
func TestCrossBlockDeadlock(t *testing.T) {
	build := func() *sim.Machine {
		m := sim.NewMachine(arch.DefaultConfig(1))
		q0 := m.AddQueue("ab")
		q1 := m.AddQueue("ba")
		mk := func(name string, deqQ, enqQ int, tid int) {
			b := isa.NewBuilder(name)
			v := b.Deq(deqQ)
			b.Enq(enqQ, v)
			b.Halt()
			m.AddStage(&sim.Stage{Prog: b.MustBuild(), Thread: thread(tid)})
		}
		mk("a", q1, q0, 0)
		mk("b", q0, q1, 1)
		return m
	}
	_, ferr := build().RunFunctional()
	if !errors.Is(ferr, sim.ErrDeadlock) {
		t.Fatalf("functional: got %v, want ErrDeadlock", ferr)
	}
	_, nerr := native.Run(build(), native.Options{WatchdogInterval: 10 * time.Millisecond})
	if !errors.Is(nerr, sim.ErrDeadlock) {
		t.Fatalf("native: got %v, want ErrDeadlock", nerr)
	}
	if !strings.Contains(nerr.Error(), "deq-empty") {
		t.Errorf("snapshot should report deq-empty stages, got: %v", nerr)
	}
}

// infiniteLoop builds a machine that never terminates and touches no
// queues: the livelock/cancellation test subject.
func infiniteLoop(traceCap int) *sim.Machine {
	m := sim.NewMachine(arch.DefaultConfig(1))
	m.MaxTraceEntries = traceCap
	b := isa.NewBuilder("spin")
	r := b.Const(0)
	b.Label("loop")
	b.OpImmTo(r, isa.OpIAddImm, r, 1)
	b.Jmp("loop")
	b.Halt() // unreachable; the builder requires a trailing halt
	m.AddStage(&sim.Stage{Prog: b.MustBuild(), Thread: thread(0)})
	return m
}

// TestCancellation: Machine.Ctx cancellation mid-run returns the same
// ErrCancelled sentinel family as the simulator, with the native phase.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := infiniteLoop(1 << 40)
	m.Ctx = ctx
	timer := time.AfterFunc(10*time.Millisecond, cancel)
	defer timer.Stop()
	_, err := native.Run(m, native.Options{})
	if !errors.Is(err, sim.ErrCancelled) {
		t.Fatalf("got %v, want ErrCancelled", err)
	}
	var ce *sim.CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("not a CancelledError: %#v", err)
	}
	if ce.Phase != "native" {
		t.Errorf("phase = %q, want native", ce.Phase)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause not preserved: %v", err)
	}
}

// TestPreCancelled: an already-cancelled context aborts promptly.
func TestPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := infiniteLoop(1 << 40)
	m.Ctx = ctx
	if _, err := native.Run(m, native.Options{}); !errors.Is(err, sim.ErrCancelled) {
		t.Fatalf("got %v, want ErrCancelled", err)
	}
}

// TestWallDeadline: Machine.WallDeadline maps to ErrWallBudget.
func TestWallDeadline(t *testing.T) {
	m := infiniteLoop(1 << 40)
	m.WallDeadline = time.Now().Add(10 * time.Millisecond)
	_, err := native.Run(m, native.Options{})
	if !errors.Is(err, sim.ErrWallBudget) {
		t.Fatalf("got %v, want ErrWallBudget", err)
	}
}

// TestTraceLimitParity: a livelocked program trips the instruction cap on
// both backends with the same sentinel.
func TestTraceLimitParity(t *testing.T) {
	if _, err := infiniteLoop(200_000).RunFunctional(); !errors.Is(err, sim.ErrTraceLimit) {
		t.Fatalf("functional: got %v, want ErrTraceLimit", err)
	}
	if _, err := native.Run(infiniteLoop(200_000), native.Options{}); !errors.Is(err, sim.ErrTraceLimit) {
		t.Fatalf("native: got %v, want ErrTraceLimit", err)
	}
}

// TestTrapParity: a functional trap (division by zero) carries the same
// class, stage, and message on both backends.
func TestTrapParity(t *testing.T) {
	build := func() *sim.Machine {
		m := sim.NewMachine(arch.DefaultConfig(1))
		b := isa.NewBuilder("divzero")
		z := b.Const(0)
		b.Op2(isa.OpIDiv, z, z)
		b.Halt()
		m.AddStage(&sim.Stage{Prog: b.MustBuild(), Thread: thread(0)})
		return m
	}
	_, ferr := build().RunFunctional()
	_, nerr := native.Run(build(), native.Options{})
	if !errors.Is(ferr, sim.ErrTrap) || !errors.Is(nerr, sim.ErrTrap) {
		t.Fatalf("trap classes: functional %v, native %v", ferr, nerr)
	}
	if ferr.Error() != nerr.Error() {
		t.Errorf("trap messages differ:\n  functional: %v\n  native:     %v", ferr, nerr)
	}
}

// TestBarrierHaltRelease: a stage halting must release the remaining
// stages' barrier (the live-count rule), exactly like the functional
// scheduler's releaseBarriers.
func TestBarrierHaltRelease(t *testing.T) {
	diffMachines(t, "barrier-halt", func() *sim.Machine {
		m := sim.NewMachine(arch.DefaultConfig(1))
		out := m.Space.Alloc("out", mem.I64, 4)
		so := m.AddSlot("out", out)
		mk := func(name string, slot int, idx, val int64, tid int) {
			b := isa.NewBuilder(name)
			i := b.Const(idx)
			v := b.Const(val)
			b.Store(slot, i, v)
			b.Barrier()
			v2 := b.OpImm(isa.OpIAddImm, v, 100)
			b.Store(slot, i, v2)
			b.Halt()
			m.AddStage(&sim.Stage{Prog: b.MustBuild(), Thread: thread(tid)})
		}
		mk("a", so, 0, 1, 0)
		mk("b", so, 1, 2, 1)
		// c halts without ever reaching a barrier; a and b must still
		// release once c is gone.
		c := isa.NewBuilder("c")
		i := c.Const(2)
		v := c.Const(3)
		c.Store(so, i, v)
		c.Halt()
		m.AddStage(&sim.Stage{Prog: c.MustBuild(), Thread: thread(2)})
		return m
	})
}

// TestCommOptPipelinesNeverDeadlockNatively pins the satellite claim: the
// commopt pass's Q4 capacity-cycle safety argument holds for bounded Go
// channels exactly as for the timing model's bounded queues, so every
// commopt-optimized family pipeline must run to completion natively with
// its inferred capacities, and at least one family must actually carry
// pass-assigned depths (so the test cannot silently assert nothing).
func TestCommOptPipelinesNeverDeadlockNatively(t *testing.T) {
	opt := core.DefaultOptions()
	opt.CommOpt = true
	assigned := 0
	for _, b := range workloads.Benchmarks(workloads.ScaleTest) {
		prog, err := workloads.CompileSerial(b.SerialSource)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Compile(prog, opt)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		for _, q := range res.Pipeline.Queues {
			if q.DepthByPass {
				assigned++
			}
		}
		in := b.Test[len(b.Test)-1]
		inst, err := pipeline.Instantiate(res.Pipeline, arch.DefaultConfig(1), in.Bind())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := native.Run(inst.Machine, native.Options{}); err != nil {
			t.Errorf("%s: commopt pipeline deadlocked or failed natively: %v", b.Name, err)
			continue
		}
		if err := in.Verify(inst); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
	if assigned == 0 {
		t.Error("commopt assigned no capacities on any family; the deadlock-freedom claim was not exercised")
	}
}
