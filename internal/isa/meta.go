package isa

import "sort"

// QueueUse summarizes how a stage program interacts with the machine's
// queues and synchronization facilities. Executors other than the trace
// simulator use it to wire lifecycle decisions statically: the native
// backend closes a channel when every producing stage has halted, sizes
// per-consumer lookahead only for queues a stage actually dequeues, and
// skips barrier/slot-swap machinery for pipelines that never exercise it.
type QueueUse struct {
	// Consumes lists the queue ids this program dequeues or peeks from,
	// sorted and deduplicated.
	Consumes []int
	// Produces lists the queue ids this program enqueues to (data or
	// control), sorted and deduplicated.
	Produces []int
	// HasBarrier reports whether the program contains OpBarrier.
	HasBarrier bool
	// HasSwap reports whether the program contains OpSwapSlots.
	HasSwap bool
	// HasHandler reports whether the program registers any control-value
	// handler (OpSetHandler).
	HasHandler bool
}

// QueueUse scans the program once and returns its queue-usage summary.
func (p *Program) QueueUse() QueueUse {
	var u QueueUse
	cons := map[int]bool{}
	prod := map[int]bool{}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Op {
		case OpDeq, OpPeek:
			cons[in.Q] = true
		case OpEnq, OpEnqCtrl, OpEnqCtrlV:
			prod[in.Q] = true
		case OpSetHandler:
			u.HasHandler = true
		case OpBarrier:
			u.HasBarrier = true
		case OpSwapSlots:
			u.HasSwap = true
		}
	}
	u.Consumes = sortedKeys(cons)
	u.Produces = sortedKeys(prod)
	return u
}

// ConsumesQueue reports whether the program dequeues or peeks from q.
func (p *Program) ConsumesQueue(q int) bool {
	for i := range p.Instrs {
		switch p.Instrs[i].Op {
		case OpDeq, OpPeek:
			if p.Instrs[i].Q == q {
				return true
			}
		}
	}
	return false
}

func sortedKeys(set map[int]bool) []int {
	if len(set) == 0 {
		return nil
	}
	out := make([]int, 0, len(set))
	for q := range set {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}
