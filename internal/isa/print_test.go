package isa

import (
	"strings"
	"testing"
)

// TestInstrStringsCoverOpcodes exercises the disassembler across the ISA.
func TestInstrStringsCoverOpcodes(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpConst, Dst: 1, Imm: 42}, "r1 = const 42"},
		{Instr{Op: OpMov, Dst: 1, A: 2}, "r1 = mov r2"},
		{Instr{Op: OpIAdd, Dst: 3, A: 1, B: 2}, "r3 = iadd r1, r2"},
		{Instr{Op: OpIAddImm, Dst: 3, A: 1, Imm: -4}, "r3 = iaddi r1, -4"},
		{Instr{Op: OpLoad, Dst: 2, A: 1, Slot: 5}, "r2 = load s5[r1]"},
		{Instr{Op: OpStore, A: 1, B: 2, Slot: 5}, "store s5[r1] = r2"},
		{Instr{Op: OpPrefetch, A: 1, Slot: 5}, "prefetch s5[r1]"},
		{Instr{Op: OpEnq, A: 1, Q: 3}, "enq q3, r1"},
		{Instr{Op: OpEnqCtrl, Q: 3, Imm: 16}, "enq_ctrl q3, 16"},
		{Instr{Op: OpEnqCtrlV, Q: 3, A: 2}, "enq_ctrl q3, r2"},
		{Instr{Op: OpDeq, Dst: 4, Q: 0}, "r4 = deq q0"},
		{Instr{Op: OpPeek, Dst: 4, Q: 0}, "r4 = peek q0"},
		{Instr{Op: OpIsCtrl, Dst: 2, A: 1}, "r2 = isctrl r1"},
		{Instr{Op: OpCtrlCode, Dst: 2, A: 1}, "r2 = ctrlcode r1"},
		{Instr{Op: OpSetHandler, Q: 1, Target: 9}, "set_handler q1 -> @9"},
		{Instr{Op: OpHandlerVal, Dst: 7}, "r7 = handlerval"},
		{Instr{Op: OpBr, A: 1, Target: 4}, "br r1 -> @4"},
		{Instr{Op: OpBrZ, A: 1, Target: 4}, "brz r1 -> @4"},
		{Instr{Op: OpJmp, Target: 4}, "jmp @4"},
		{Instr{Op: OpHalt}, "halt"},
		{Instr{Op: OpBarrier}, "barrier"},
		{Instr{Op: OpSwapSlots, Slot: 1, Slot2: 2}, "swap s1, s2"},
		{Instr{Op: OpNop}, "nop"},
		{Instr{Op: OpFAdd, Dst: 3, A: 1, B: 2}, "r3 = fadd r1, r2"},
		{Instr{Op: OpF2I, Dst: 3, A: 1}, "r3 = f2i r1"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%v: %q, want %q", c.in.Op, got, c.want)
		}
	}
}

func TestOpNamesComplete(t *testing.T) {
	for op := OpNop; op <= OpSwapSlots; op++ {
		if strings.HasPrefix(op.String(), "op(") {
			t.Errorf("opcode %d has no name", op)
		}
	}
	if !strings.HasPrefix(Op(200).String(), "op(") {
		t.Error("unknown opcode should fall back to numeric form")
	}
}

func TestValidateBadTargetsAndSlots(t *testing.T) {
	mk := func(in Instr) *Program {
		return &Program{Name: "t", Instrs: []Instr{in, {Op: OpHalt}}, NumRegs: 4}
	}
	bad := []Instr{
		{Op: OpJmp, Target: 99},
		{Op: OpBr, A: 0, Target: -1},
		{Op: OpLoad, Dst: 0, A: 1, Slot: 7},
		{Op: OpSwapSlots, Slot: 0, Slot2: 9},
		{Op: OpIAdd, Dst: 9, A: 0, B: 1}, // dst out of range
		{Op: OpIAdd, Dst: 0, A: 9, B: 1}, // src out of range
	}
	for i, in := range bad {
		if err := mk(in).Validate(2, 2); err == nil {
			t.Errorf("case %d (%v) should fail validation", i, in.Op)
		}
	}
	good := Instr{Op: OpLoad, Dst: 0, A: 1, Slot: 1}
	if err := mk(good).Validate(2, 2); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}
