package isa

import (
	"reflect"
	"testing"
)

func TestCFGSuccessors(t *testing.T) {
	b := NewBuilder("cfg")
	r := b.Const(1) // 0
	b.Br(r, "skip") // 1 -> 2, 3
	b.Enq(0, r)     // 2
	b.Label("skip") //
	b.Jmp("end")    // 3 -> 4
	b.Label("end")  //
	b.Halt()        // 4
	p := b.MustBuild()
	want := [][]int{{1}, {2, 3}, {3}, {4}, nil}
	got := p.CFG()
	for pc := range want {
		if !reflect.DeepEqual(got[pc], want[pc]) && !(len(got[pc]) == 0 && len(want[pc]) == 0) {
			t.Fatalf("pc %d: successors %v, want %v", pc, got[pc], want[pc])
		}
	}
}

func TestCFGHandlerEdges(t *testing.T) {
	b := NewBuilder("handler")
	b.SetHandler(0, "h") // 0
	b.Deq(0)             // 1 -> 2 and handler 3
	b.Halt()             // 2
	b.Label("h")
	b.Halt() // 3
	p := b.MustBuild()
	succs := p.CFG()
	want := []int{2, 3}
	if !reflect.DeepEqual(succs[1], want) {
		t.Fatalf("deq successors %v, want %v (fallthrough + handler)", succs[1], want)
	}
	// A deq on an unhandled queue gets no handler edge.
	b2 := NewBuilder("nohandler")
	b2.Deq(1)
	b2.Halt()
	p2 := b2.MustBuild()
	if got := p2.CFG()[0]; !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("unhandled deq successors %v, want [1]", got)
	}
}

func TestReachable(t *testing.T) {
	b := NewBuilder("reach")
	b.Jmp("end")   // 0
	b.Const(7)     // 1 (dead)
	b.Label("end") //
	b.Halt()       // 2
	p := b.MustBuild()
	got := p.Reachable()
	want := []bool{true, false, true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reachable %v, want %v", got, want)
	}
}
