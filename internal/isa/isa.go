// Package isa defines the flat register-machine instruction set that Phloem
// pipeline stages are lowered to and that the Pipette machine model executes.
//
// The ISA mirrors a conventional scalar ISA extended with Pipette's queue
// interface (Table I of the paper): enq/deq/peek, control-value enqueue and
// test, and control-value handler registration. Each pipeline stage is one
// Program executed by one SMT thread.
//
// Values are 64-bit and carry a hardware "control" tag bit, exactly like
// Pipette's in-band control values: ALU operations clear the tag, queue
// operations preserve it, and IsCtrl tests it.
package isa

import "fmt"

// Reg names a virtual register within one stage. Stages have private register
// files; communication between stages happens only through queues and memory.
type Reg int32

// NoReg marks an unused register operand.
const NoReg Reg = -1

// Op enumerates instruction opcodes.
type Op uint8

const (
	OpNop Op = iota

	// Data movement and constants.
	OpConst // Dst = Imm
	OpMov   // Dst = A

	// Integer ALU.
	OpIAdd    // Dst = A + B
	OpIAddImm // Dst = A + Imm
	OpISub    // Dst = A - B
	OpIMul    // Dst = A * B
	OpIMulImm // Dst = A * Imm
	OpIDiv    // Dst = A / B (traps on 0 in the functional model)
	OpIRem    // Dst = A % B
	OpIAnd    // Dst = A & B
	OpIOr     // Dst = A | B
	OpIXor    // Dst = A ^ B
	OpIShl    // Dst = A << B
	OpIShr    // Dst = A >> B (arithmetic)
	OpIAndImm // Dst = A & Imm
	OpIShrImm // Dst = A >> Imm (arithmetic)

	// Integer comparisons (Dst = 0 or 1).
	OpICmpEQ
	OpICmpNE
	OpICmpLT
	OpICmpLE
	OpICmpGT
	OpICmpGE

	// Floating point (operands are float64 bit patterns in registers).
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg
	OpFAbs
	OpFCmpEQ
	OpFCmpNE
	OpFCmpLT
	OpFCmpLE
	OpFCmpGT
	OpFCmpGE
	OpI2F // Dst = float64(A)
	OpF2I // Dst = int64(float value in A), truncating

	// Memory. Slot selects an array slot; the machine resolves the slot to
	// the currently bound array (bindings can change at SwapSlots).
	OpLoad     // Dst = slot[A]
	OpStore    // slot[A] = B
	OpPrefetch // touch slot[A] (no result; warms the cache)

	// Queue interface (Table I).
	OpEnq      // enq(Q, A)
	OpEnqCtrl  // enq_ctrl(Q, Imm) — enqueue control value with code Imm
	OpEnqCtrlV // enq_ctrl(Q, A) — enqueue control value with code from reg A
	OpDeq      // Dst = deq(Q)
	OpPeek     // Dst = peek(Q)
	OpIsCtrl   // Dst = is_control(A)
	OpCtrlCode // Dst = code of A (valid when A is a control value)

	// Control-value handlers (Sec. III). When a Deq on queue Q is about to
	// pop a control value and a handler is registered, the thread jumps to
	// Target instead; the control value is consumed and its code is made
	// available via OpHandlerVal.
	OpSetHandler // set handler for Q at Target
	OpHandlerVal // Dst = code of the control value that fired the handler

	// Control flow.
	OpBr   // if A != 0 goto Target
	OpBrZ  // if A == 0 goto Target
	OpJmp  // goto Target
	OpHalt // stage finished

	// Phase synchronization. All threads rendezvous at their next Barrier.
	OpBarrier
	// SwapSlots exchanges the bindings of Slot and Slot2 machine-wide. Only
	// one thread may execute a given swap between two barriers (or at a
	// well-defined queue-ordered point); the code generator guarantees this.
	OpSwapSlots
)

var opNames = map[Op]string{
	OpNop: "nop", OpConst: "const", OpMov: "mov",
	OpIAdd: "iadd", OpIAddImm: "iaddi", OpISub: "isub", OpIMul: "imul",
	OpIMulImm: "imuli", OpIDiv: "idiv", OpIRem: "irem", OpIAnd: "iand",
	OpIOr: "ior", OpIXor: "ixor", OpIShl: "ishl", OpIShr: "ishr",
	OpIAndImm: "iandi", OpIShrImm: "ishri",
	OpICmpEQ: "icmpeq", OpICmpNE: "icmpne", OpICmpLT: "icmplt",
	OpICmpLE: "icmple", OpICmpGT: "icmpgt", OpICmpGE: "icmpge",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFNeg: "fneg", OpFAbs: "fabs",
	OpFCmpEQ: "fcmpeq", OpFCmpNE: "fcmpne", OpFCmpLT: "fcmplt",
	OpFCmpLE: "fcmple", OpFCmpGT: "fcmpgt", OpFCmpGE: "fcmpge",
	OpI2F: "i2f", OpF2I: "f2i",
	OpLoad: "load", OpStore: "store", OpPrefetch: "prefetch",
	OpEnq: "enq", OpEnqCtrl: "enqctrl", OpEnqCtrlV: "enqctrlv",
	OpDeq: "deq", OpPeek: "peek", OpIsCtrl: "isctrl", OpCtrlCode: "ctrlcode",
	OpSetHandler: "sethandler", OpHandlerVal: "handlerval",
	OpBr: "br", OpBrZ: "brz", OpJmp: "jmp", OpHalt: "halt",
	OpBarrier: "barrier", OpSwapSlots: "swapslots",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one instruction. Field use depends on Op; unused fields are zero
// (or NoReg for registers).
type Instr struct {
	Op     Op
	Dst    Reg
	A, B   Reg
	Imm    int64
	Slot   int // array slot for Load/Store/SwapSlots
	Slot2  int // second slot for SwapSlots
	Q      int // queue id for queue ops
	Target int // branch/jump/handler target (instruction index)
}

// Class groups opcodes for the timing model.
type Class uint8

const (
	ClassIntAlu Class = iota
	ClassFloatAlu
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassQueue
	ClassBranch
	ClassJump
	ClassSync  // barrier, swapslots
	ClassOther // nop, sethandler, halt
)

// Class returns the timing class of the instruction.
func (in *Instr) Class() Class {
	switch in.Op {
	case OpLoad:
		return ClassLoad
	case OpStore, OpPrefetch:
		return ClassStore
	case OpEnq, OpEnqCtrl, OpEnqCtrlV, OpDeq, OpPeek:
		return ClassQueue
	case OpBr, OpBrZ:
		return ClassBranch
	case OpJmp:
		return ClassJump
	case OpIMul, OpIMulImm:
		return ClassMul
	case OpIDiv, OpIRem, OpFDiv:
		return ClassDiv
	case OpFAdd, OpFSub, OpFMul, OpFNeg, OpFAbs,
		OpFCmpEQ, OpFCmpNE, OpFCmpLT, OpFCmpLE, OpFCmpGT, OpFCmpGE,
		OpI2F, OpF2I:
		return ClassFloatAlu
	case OpBarrier, OpSwapSlots:
		return ClassSync
	case OpNop, OpHalt, OpSetHandler:
		return ClassOther
	default:
		return ClassIntAlu
	}
}

// Latency returns the execution latency in cycles for non-memory ops
// (memory latency comes from the cache model).
func (c Class) Latency() uint64 {
	switch c {
	case ClassFloatAlu:
		return 4
	case ClassMul:
		return 3
	case ClassDiv:
		return 20
	case ClassQueue:
		return 1
	default:
		return 1
	}
}

// IsQueueOp reports whether the instruction touches a queue.
func (in *Instr) IsQueueOp() bool { return in.Class() == ClassQueue }

// Reads returns the source registers read by the instruction (0, 1, or 2).
func (in *Instr) Reads() (a, b Reg) {
	a, b = NoReg, NoReg
	switch in.Op {
	case OpConst, OpDeq, OpPeek, OpJmp, OpHalt, OpNop, OpBarrier,
		OpSwapSlots, OpSetHandler, OpEnqCtrl, OpHandlerVal:
		// no register sources
	case OpMov, OpIAddImm, OpIMulImm, OpIAndImm, OpIShrImm, OpFNeg, OpFAbs,
		OpI2F, OpF2I, OpLoad, OpPrefetch, OpEnq, OpEnqCtrlV, OpIsCtrl,
		OpCtrlCode, OpBr, OpBrZ:
		a = in.A
	default:
		a, b = in.A, in.B
	}
	return a, b
}

// Writes reports the destination register (NoReg if none).
func (in *Instr) Writes() Reg {
	switch in.Op {
	case OpStore, OpPrefetch, OpEnq, OpEnqCtrl, OpEnqCtrlV, OpBr, OpBrZ,
		OpJmp, OpHalt, OpNop, OpBarrier, OpSwapSlots, OpSetHandler:
		return NoReg
	}
	return in.Dst
}

// Program is the code of one pipeline stage.
type Program struct {
	// Name identifies the stage (e.g., "enumerate neighbors").
	Name string
	// Instrs is the instruction sequence; entry point is index 0.
	Instrs []Instr
	// NumRegs is the size of the virtual register file.
	NumRegs int
	// Lines maps each instruction to the 1-based kernel source line it was
	// lowered from (0: compiler-generated glue). Parallel to Instrs; nil for
	// programs built without line tracking (hand-written stage programs).
	Lines []int32
}

// Line returns the source line for pc (0 when untracked or generated).
func (p *Program) Line(pc int) int32 {
	if pc < 0 || pc >= len(p.Lines) {
		return 0
	}
	return p.Lines[pc]
}

// Validate checks structural well-formedness: branch targets in range,
// registers in range. It returns the first problem found.
func (p *Program) Validate(numQueues, numSlots int) error {
	checkReg := func(r Reg, pc int, what string) error {
		if r == NoReg {
			return nil
		}
		if int(r) < 0 || int(r) >= p.NumRegs {
			return fmt.Errorf("isa: %s@%d: %s register %d out of range [0,%d)", p.Name, pc, what, r, p.NumRegs)
		}
		return nil
	}
	for pc := range p.Instrs {
		in := &p.Instrs[pc]
		a, b := in.Reads()
		if err := checkReg(a, pc, "src"); err != nil {
			return err
		}
		if err := checkReg(b, pc, "src"); err != nil {
			return err
		}
		if err := checkReg(in.Writes(), pc, "dst"); err != nil {
			return err
		}
		switch in.Op {
		case OpBr, OpBrZ, OpJmp, OpSetHandler:
			if in.Target < 0 || in.Target >= len(p.Instrs) {
				return fmt.Errorf("isa: %s@%d: target %d out of range", p.Name, pc, in.Target)
			}
		}
		switch in.Op {
		case OpEnq, OpEnqCtrl, OpEnqCtrlV, OpDeq, OpPeek, OpSetHandler:
			if in.Q < 0 || in.Q >= numQueues {
				return fmt.Errorf("isa: %s@%d: queue %d out of range [0,%d)", p.Name, pc, in.Q, numQueues)
			}
		case OpLoad, OpStore, OpPrefetch:
			if in.Slot < 0 || in.Slot >= numSlots {
				return fmt.Errorf("isa: %s@%d: slot %d out of range [0,%d)", p.Name, pc, in.Slot, numSlots)
			}
		case OpSwapSlots:
			if in.Slot < 0 || in.Slot >= numSlots || in.Slot2 < 0 || in.Slot2 >= numSlots {
				return fmt.Errorf("isa: %s@%d: swap slots %d,%d out of range", p.Name, pc, in.Slot, in.Slot2)
			}
		}
	}
	if len(p.Instrs) == 0 || p.Instrs[len(p.Instrs)-1].Op != OpHalt {
		// Not fatal for loops that never exit, but all generated stages end
		// with Halt; enforce it to catch codegen bugs early.
		return fmt.Errorf("isa: %s: program must end with halt", p.Name)
	}
	return nil
}

// String renders the instruction in a readable assembly-like form.
func (in Instr) String() string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("r%d = const %d", in.Dst, in.Imm)
	case OpIAddImm, OpIMulImm, OpIAndImm, OpIShrImm:
		return fmt.Sprintf("r%d = %s r%d, %d", in.Dst, in.Op, in.A, in.Imm)
	case OpLoad:
		return fmt.Sprintf("r%d = load s%d[r%d]", in.Dst, in.Slot, in.A)
	case OpStore:
		return fmt.Sprintf("store s%d[r%d] = r%d", in.Slot, in.A, in.B)
	case OpPrefetch:
		return fmt.Sprintf("prefetch s%d[r%d]", in.Slot, in.A)
	case OpEnq:
		return fmt.Sprintf("enq q%d, r%d", in.Q, in.A)
	case OpEnqCtrl:
		return fmt.Sprintf("enq_ctrl q%d, %d", in.Q, in.Imm)
	case OpEnqCtrlV:
		return fmt.Sprintf("enq_ctrl q%d, r%d", in.Q, in.A)
	case OpDeq:
		return fmt.Sprintf("r%d = deq q%d", in.Dst, in.Q)
	case OpPeek:
		return fmt.Sprintf("r%d = peek q%d", in.Dst, in.Q)
	case OpSetHandler:
		return fmt.Sprintf("set_handler q%d -> @%d", in.Q, in.Target)
	case OpBr:
		return fmt.Sprintf("br r%d -> @%d", in.A, in.Target)
	case OpBrZ:
		return fmt.Sprintf("brz r%d -> @%d", in.A, in.Target)
	case OpJmp:
		return fmt.Sprintf("jmp @%d", in.Target)
	case OpHalt:
		return "halt"
	case OpBarrier:
		return "barrier"
	case OpSwapSlots:
		return fmt.Sprintf("swap s%d, s%d", in.Slot, in.Slot2)
	case OpMov, OpFNeg, OpFAbs, OpI2F, OpF2I, OpIsCtrl, OpCtrlCode:
		return fmt.Sprintf("r%d = %s r%d", in.Dst, in.Op, in.A)
	case OpHandlerVal:
		return fmt.Sprintf("r%d = handlerval", in.Dst)
	case OpNop:
		return "nop"
	default:
		return fmt.Sprintf("r%d = %s r%d, r%d", in.Dst, in.Op, in.A, in.B)
	}
}

// Disassemble renders the whole program.
func (p *Program) Disassemble() string {
	out := ""
	for i, in := range p.Instrs {
		out += fmt.Sprintf("%4d: %s\n", i, in.String())
	}
	return out
}
