package isa

import (
	"reflect"
	"testing"
)

func TestQueueUse(t *testing.T) {
	p := &Program{
		Name: "meta",
		Instrs: []Instr{
			{Op: OpConst, Dst: 0, Imm: 7},
			{Op: OpDeq, Dst: 1, Q: 3},
			{Op: OpPeek, Dst: 1, Q: 1},
			{Op: OpDeq, Dst: 1, Q: 3}, // duplicate: must dedup
			{Op: OpEnq, A: 0, Q: 2},
			{Op: OpEnqCtrl, Q: 5, Imm: 16},
			{Op: OpEnqCtrlV, A: 0, Q: 2}, // duplicate
			{Op: OpSetHandler, Q: 1, Target: 0},
			{Op: OpBarrier},
			{Op: OpSwapSlots, Slot: 0, Slot2: 1},
			{Op: OpHalt},
		},
		NumRegs: 2,
	}
	u := p.QueueUse()
	if want := []int{1, 3}; !reflect.DeepEqual(u.Consumes, want) {
		t.Errorf("Consumes = %v, want %v", u.Consumes, want)
	}
	if want := []int{2, 5}; !reflect.DeepEqual(u.Produces, want) {
		t.Errorf("Produces = %v, want %v", u.Produces, want)
	}
	if !u.HasBarrier || !u.HasSwap || !u.HasHandler {
		t.Errorf("flags = barrier=%v swap=%v handler=%v, want all true",
			u.HasBarrier, u.HasSwap, u.HasHandler)
	}
	if !p.ConsumesQueue(1) || !p.ConsumesQueue(3) || p.ConsumesQueue(2) {
		t.Errorf("ConsumesQueue wrong: q1=%v q3=%v q2=%v",
			p.ConsumesQueue(1), p.ConsumesQueue(3), p.ConsumesQueue(2))
	}
}

func TestQueueUseEmpty(t *testing.T) {
	p := &Program{Name: "empty", Instrs: []Instr{{Op: OpHalt}}}
	u := p.QueueUse()
	if u.Consumes != nil || u.Produces != nil || u.HasBarrier || u.HasSwap || u.HasHandler {
		t.Errorf("empty program summary not empty: %+v", u)
	}
}
