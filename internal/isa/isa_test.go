package isa

import "testing"

func TestBuilderLabelsAndBranches(t *testing.T) {
	b := NewBuilder("t")
	r := b.Const(3)
	b.Label("loop")
	r2 := b.OpImm(OpIAddImm, r, -1)
	b.MovTo(r, r2)
	b.Br(r, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(0, 0); err != nil {
		t.Fatal(err)
	}
	// The branch must target the label's instruction.
	var br *Instr
	for i := range p.Instrs {
		if p.Instrs[i].Op == OpBr {
			br = &p.Instrs[i]
		}
	}
	if br == nil || br.Target != 1 {
		t.Fatalf("branch target: %+v", br)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Jmp("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected undefined-label error")
	}
}

func TestValidateCatchesBadQueue(t *testing.T) {
	b := NewBuilder("t")
	b.Deq(3)
	b.Halt()
	p := b.MustBuild()
	if err := p.Validate(2, 0); err == nil {
		t.Error("queue 3 should be out of range")
	}
	if err := p.Validate(4, 0); err != nil {
		t.Errorf("queue 3 should be fine with 4 queues: %v", err)
	}
}

func TestValidateRequiresHalt(t *testing.T) {
	p := &Program{Name: "t", Instrs: []Instr{{Op: OpNop}}, NumRegs: 0}
	if err := p.Validate(0, 0); err == nil {
		t.Error("missing halt should fail validation")
	}
}

func TestReadsWrites(t *testing.T) {
	cases := []struct {
		in   Instr
		a, b Reg
		w    Reg
	}{
		{Instr{Op: OpIAdd, Dst: 2, A: 0, B: 1}, 0, 1, 2},
		{Instr{Op: OpConst, Dst: 3}, NoReg, NoReg, 3},
		{Instr{Op: OpDeq, Dst: 4, Q: 0}, NoReg, NoReg, 4},
		{Instr{Op: OpEnq, A: 5, Q: 0}, 5, NoReg, NoReg},
		{Instr{Op: OpStore, A: 1, B: 2}, 1, 2, NoReg},
		{Instr{Op: OpBr, A: 7}, 7, NoReg, NoReg},
		{Instr{Op: OpLoad, Dst: 8, A: 6}, 6, NoReg, 8},
	}
	for _, c := range cases {
		a, b := c.in.Reads()
		if a != c.a || b != c.b || c.in.Writes() != c.w {
			t.Errorf("%v: reads (%d,%d) writes %d; want (%d,%d) %d",
				c.in.Op, a, b, c.in.Writes(), c.a, c.b, c.w)
		}
	}
}

func TestClassLatencies(t *testing.T) {
	if (&Instr{Op: OpFAdd}).Class() != ClassFloatAlu {
		t.Error("fadd class")
	}
	if (&Instr{Op: OpDeq}).Class() != ClassQueue {
		t.Error("deq class")
	}
	if ClassDiv.Latency() <= ClassIntAlu.Latency() {
		t.Error("div should be slower than alu")
	}
	if !(&Instr{Op: OpEnqCtrl}).IsQueueOp() {
		t.Error("enq_ctrl is a queue op")
	}
}

func TestDisassembleSmoke(t *testing.T) {
	b := NewBuilder("t")
	r := b.Const(1)
	b.Enq(0, r)
	b.EnqCtrl(0, 16)
	v := b.Deq(1)
	b.IsCtrl(v)
	b.Store(0, r, v)
	b.Halt()
	p := b.MustBuild()
	if len(p.Disassemble()) == 0 {
		t.Error("empty disassembly")
	}
}
