package isa

// CFG computes each instruction's control-flow successor list, including
// handler-redirect edges: a Deq (or Peek) on a queue for which the program
// registers a control-value handler may transfer control to the handler
// target instead of falling through. Successor lists are in deterministic
// order (fallthrough first, then branch/handler targets).
//
// The result is indexed by pc; Halt has no successors. Callers must have
// validated the program first (targets in range).
func (p *Program) CFG() [][]int {
	// Handler targets per queue: SetHandler is a dynamic registration, so any
	// Deq on a handled queue conservatively gets an edge to every handler the
	// program can register for that queue.
	handlers := map[int][]int{}
	for _, in := range p.Instrs {
		if in.Op == OpSetHandler {
			handlers[in.Q] = appendUnique(handlers[in.Q], in.Target)
		}
	}
	succs := make([][]int, len(p.Instrs))
	for pc, in := range p.Instrs {
		var s []int
		switch in.Op {
		case OpHalt:
			// no successors
		case OpJmp:
			s = append(s, in.Target)
		case OpBr, OpBrZ:
			if pc+1 < len(p.Instrs) {
				s = append(s, pc+1)
			}
			s = appendUnique(s, in.Target)
		case OpDeq, OpPeek:
			if pc+1 < len(p.Instrs) {
				s = append(s, pc+1)
			}
			for _, h := range handlers[in.Q] {
				s = appendUnique(s, h)
			}
		default:
			if pc+1 < len(p.Instrs) {
				s = append(s, pc+1)
			}
		}
		succs[pc] = s
	}
	return succs
}

// Reachable returns the set of instructions reachable from the entry point
// along CFG edges.
func (p *Program) Reachable() []bool {
	succs := p.CFG()
	seen := make([]bool, len(p.Instrs))
	if len(p.Instrs) == 0 {
		return seen
	}
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range succs[pc] {
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	return seen
}

func appendUnique(list []int, x int) []int {
	for _, v := range list {
		if v == x {
			return list
		}
	}
	return append(list, x)
}
