package isa

import "fmt"

// Builder assembles a Program with symbolic labels and automatic register
// allocation. It is used by the code generator (internal/lower) and by the
// hand-written "manually pipelined" workload variants.
type Builder struct {
	name    string
	instrs  []Instr
	lines   []int32
	line    int32
	nextReg Reg
	labels  map[string]int
	fixups  []fixup
}

type fixup struct {
	pc    int
	label string
}

// NewBuilder starts a new stage program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: map[string]int{}}
}

// Reg allocates a fresh virtual register.
func (b *Builder) Reg() Reg {
	r := b.nextReg
	b.nextReg++
	return r
}

// PC returns the index of the next emitted instruction.
func (b *Builder) PC() int { return len(b.instrs) }

// Label binds name to the next emitted instruction.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("isa: duplicate label %q in %s", name, b.name))
	}
	b.labels[name] = len(b.instrs)
}

// SetLine records the kernel source line for subsequently emitted
// instructions (0: compiler-generated glue). Callers that never use it get a
// program with all-zero lines.
func (b *Builder) SetLine(line int32) { b.line = line }

func (b *Builder) emit(in Instr) {
	b.instrs = append(b.instrs, in)
	b.lines = append(b.lines, b.line)
}

// Emit appends a raw instruction (used for ops without a dedicated helper).
func (b *Builder) Emit(in Instr) { b.emit(in) }

func (b *Builder) emitTo(in Instr, label string) {
	b.fixups = append(b.fixups, fixup{pc: len(b.instrs), label: label})
	b.emit(in)
}

// Const emits Dst = imm and returns the destination register.
func (b *Builder) Const(imm int64) Reg {
	d := b.Reg()
	b.emit(Instr{Op: OpConst, Dst: d, Imm: imm})
	return d
}

// Op2 emits a two-source ALU op.
func (b *Builder) Op2(op Op, a, c Reg) Reg {
	d := b.Reg()
	b.emit(Instr{Op: op, Dst: d, A: a, B: c})
	return d
}

// Op1 emits a one-source op.
func (b *Builder) Op1(op Op, a Reg) Reg {
	d := b.Reg()
	b.emit(Instr{Op: op, Dst: d, A: a})
	return d
}

// OpImm emits an ALU op with an immediate operand (e.g., OpIAddImm).
func (b *Builder) OpImm(op Op, a Reg, imm int64) Reg {
	d := b.Reg()
	b.emit(Instr{Op: op, Dst: d, A: a, Imm: imm})
	return d
}

// MovTo emits dst = a into an existing register (for loop-carried values).
func (b *Builder) MovTo(dst, a Reg) {
	b.emit(Instr{Op: OpMov, Dst: dst, A: a})
}

// ConstTo emits dst = imm into an existing register.
func (b *Builder) ConstTo(dst Reg, imm int64) {
	b.emit(Instr{Op: OpConst, Dst: dst, Imm: imm})
}

// Op2To emits a two-source ALU op into an existing register.
func (b *Builder) Op2To(dst Reg, op Op, a, c Reg) {
	b.emit(Instr{Op: op, Dst: dst, A: a, B: c})
}

// OpImmTo emits an immediate ALU op into an existing register.
func (b *Builder) OpImmTo(dst Reg, op Op, a Reg, imm int64) {
	b.emit(Instr{Op: op, Dst: dst, A: a, Imm: imm})
}

// Load emits Dst = slot[idx].
func (b *Builder) Load(slot int, idx Reg) Reg {
	d := b.Reg()
	b.emit(Instr{Op: OpLoad, Dst: d, A: idx, Slot: slot})
	return d
}

// LoadTo emits dst = slot[idx] into an existing register.
func (b *Builder) LoadTo(dst Reg, slot int, idx Reg) {
	b.emit(Instr{Op: OpLoad, Dst: dst, A: idx, Slot: slot})
}

// Store emits slot[idx] = val.
func (b *Builder) Store(slot int, idx, val Reg) {
	b.emit(Instr{Op: OpStore, Slot: slot, A: idx, B: val})
}

// Enq emits enq(q, a).
func (b *Builder) Enq(q int, a Reg) {
	b.emit(Instr{Op: OpEnq, Q: q, A: a})
}

// EnqCtrl emits enq_ctrl(q, code).
func (b *Builder) EnqCtrl(q int, code int64) {
	b.emit(Instr{Op: OpEnqCtrl, Q: q, Imm: code})
}

// EnqCtrlV emits enq_ctrl(q, reg) forwarding a control code from a register.
func (b *Builder) EnqCtrlV(q int, a Reg) {
	b.emit(Instr{Op: OpEnqCtrlV, Q: q, A: a})
}

// Deq emits Dst = deq(q).
func (b *Builder) Deq(q int) Reg {
	d := b.Reg()
	b.emit(Instr{Op: OpDeq, Dst: d, Q: q})
	return d
}

// DeqTo emits dst = deq(q) into an existing register.
func (b *Builder) DeqTo(dst Reg, q int) {
	b.emit(Instr{Op: OpDeq, Dst: dst, Q: q})
}

// Peek emits Dst = peek(q).
func (b *Builder) Peek(q int) Reg {
	d := b.Reg()
	b.emit(Instr{Op: OpPeek, Dst: d, Q: q})
	return d
}

// IsCtrl emits Dst = is_control(a).
func (b *Builder) IsCtrl(a Reg) Reg {
	d := b.Reg()
	b.emit(Instr{Op: OpIsCtrl, Dst: d, A: a})
	return d
}

// CtrlCode emits Dst = control code of a.
func (b *Builder) CtrlCode(a Reg) Reg {
	d := b.Reg()
	b.emit(Instr{Op: OpCtrlCode, Dst: d, A: a})
	return d
}

// HandlerVal emits Dst = code of the control value that fired the handler.
func (b *Builder) HandlerVal() Reg {
	d := b.Reg()
	b.emit(Instr{Op: OpHandlerVal, Dst: d})
	return d
}

// SetHandler registers the control-value handler for q at label.
func (b *Builder) SetHandler(q int, label string) {
	b.emitTo(Instr{Op: OpSetHandler, Q: q}, label)
}

// Br emits a conditional branch to label when a != 0.
func (b *Builder) Br(a Reg, label string) {
	b.emitTo(Instr{Op: OpBr, A: a}, label)
}

// BrZ emits a conditional branch to label when a == 0.
func (b *Builder) BrZ(a Reg, label string) {
	b.emitTo(Instr{Op: OpBrZ, A: a}, label)
}

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) {
	b.emitTo(Instr{Op: OpJmp}, label)
}

// Halt emits the stage-finished instruction.
func (b *Builder) Halt() { b.emit(Instr{Op: OpHalt}) }

// Barrier emits a phase barrier.
func (b *Builder) Barrier() { b.emit(Instr{Op: OpBarrier}) }

// SwapSlots emits a machine-wide binding swap of two array slots.
func (b *Builder) SwapSlots(s1, s2 int) {
	b.emit(Instr{Op: OpSwapSlots, Slot: s1, Slot2: s2})
}

// Build resolves labels and returns the finished program.
func (b *Builder) Build() (*Program, error) {
	for _, f := range b.fixups {
		pc, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q in %s", f.label, b.name)
		}
		b.instrs[f.pc].Target = pc
	}
	p := &Program{Name: b.name, Instrs: b.instrs, NumRegs: int(b.nextReg), Lines: b.lines}
	return p, nil
}

// MustBuild is Build that panics on error; for use in tests and static tables.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
